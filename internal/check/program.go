package check

import (
	"sort"

	"repro/internal/bincfg"
	"repro/internal/isa"
	"repro/internal/sfi"
)

// Options configures a verification pass.
type Options struct {
	// Entries are the rewritten-program indices execution can start from
	// (coroutine entry points). They root the reachability analyses:
	// call/ret discipline and insertion-group reachability. Empty
	// defaults to instruction 0.
	Entries []int
	// SFI, when non-nil, additionally enforces guard discipline: every
	// LOAD (and STORE when GuardStores) must be preceded by a CHECK of
	// the same address, or — with CoDesign — sit in the shadow of a
	// yield's context switch (see internal/sfi).
	SFI *sfi.Options
}

// Program verifies that rewritten is a sound instrumentation of orig
// under the oldToNew index mapping, accumulating every finding into a
// Report. It never stops at the first violation; only a malformed
// mapping (or an invalid rewritten program) short-circuits, because
// every later rule keys off the group layout the mapping defines.
func Program(orig, rewritten *isa.Program, oldToNew []int, opts Options) *Report {
	rep := &Report{}
	n := len(orig.Instrs)

	if len(oldToNew) != n {
		rep.add(RuleMapping, SevError, -1, -1,
			"mapping covers %d of %d instructions", len(oldToNew), n)
		return rep
	}
	if err := rewritten.Validate(); err != nil {
		rep.add(RuleMapping, SevError, -1, -1, "rewritten program invalid: %v", err)
		return rep
	}
	rep.Checked = len(rewritten.Instrs)
	rep.Inserted = len(rewritten.Instrs) - n

	// Group layout: old instruction i's insertion group occupies
	// [groupStart[i], oldToNew[i]) and its image sits at oldToNew[i].
	groupStart := make([]int, n)
	prevEnd := 0
	for i, nw := range oldToNew {
		if nw < prevEnd || nw >= len(rewritten.Instrs) {
			rep.add(RuleMapping, SevError, nw, i, "mapping not monotone or out of range")
			return rep
		}
		groupStart[i] = prevEnd
		prevEnd = nw + 1
	}

	isOriginal := make([]bool, len(rewritten.Instrs))
	validTarget := make([]bool, len(rewritten.Instrs))
	for _, gs := range groupStart {
		validTarget[gs] = true
	}

	// Positional soundness (the instrument.Verify rules, re-proved here
	// so shcheck stands alone on a pair of images).
	for i, in := range orig.Instrs {
		nw := oldToNew[i]
		isOriginal[nw] = true
		want := in
		if in.Op.IsBranch() {
			t := in.Target()
			if t < 0 || t >= n {
				rep.add(RuleMapping, SevError, nw, i, "original branch target %d outside program", t)
				continue
			}
			want.Imm = int64(groupStart[t])
		}
		if rewritten.Instrs[nw] != want {
			rep.add(RuleOriginal, SevError, nw, i,
				"original instruction changed: %v -> %v", in, rewritten.Instrs[nw])
		}
	}
	for p, in := range rewritten.Instrs {
		if isOriginal[p] {
			continue
		}
		switch in.Op {
		case isa.OpNop, isa.OpPrefetch, isa.OpYield, isa.OpCYield, isa.OpCheck:
		default:
			rep.add(RuleEffectFree, SevError, p, -1,
				"inserted instruction (%v) is not effect-free", in)
		}
	}

	// Branch-target closure over the whole rewritten program: every
	// transfer through an immediate must land on a group start, so the
	// prefetches and yields guarding an instruction always execute
	// before it.
	for p, in := range rewritten.Instrs {
		if !in.Op.IsBranch() || validTarget[in.Target()] {
			continue
		}
		t := in.Target()
		// Locate the group the target falls into for a precise message.
		i := sort.SearchInts(oldToNew, t)
		if i < n && t > groupStart[i] {
			rep.add(RuleBranchTarget, SevError, p, -1,
				"branch targets %d, inside the insertion group of old pc %d (group starts at %d)",
				t, i, groupStart[i])
		} else {
			rep.add(RuleBranchTarget, SevError, p, -1,
				"branch targets %d, not a remapped original position", t)
		}
	}

	g, err := bincfg.Build(rewritten)
	if err != nil {
		rep.add(RuleMapping, SevError, -1, -1, "rewritten program has no CFG: %v", err)
		sortDiags(rep)
		return rep
	}
	live := bincfg.ComputeLiveness(g)

	// Liveness safety. The runtime poisons every register a yield's mask
	// omits (see isa), so the mask must cover everything live at the
	// yield; and an insertion must never write a register that is live
	// at its point.
	for p, in := range rewritten.Instrs {
		if in.Op.IsYield() {
			need := live.LiveOut(p)
			if missing := need &^ in.LiveMask(); missing != 0 {
				old := -1
				if isOriginal[p] {
					old = oldOf(oldToNew, p)
				}
				rep.add(RuleLiveness, SevError, p, old,
					"%v save mask %v omits live registers %v (poisoned on resume)",
					in.Op, in.LiveMask(), missing)
			}
		}
		if !isOriginal[p] {
			if clobbered := in.Defs() & live.LiveOut(p); clobbered != 0 {
				rep.add(RuleLiveness, SevError, p, -1,
					"inserted %v clobbers live registers %v", in, clobbered)
			}
		}
	}

	// Yield-policy discipline: an inserted primary YIELD exists to
	// expose the memory operation immediately after it (prefetch+yield
	// pairs, §3.2); a detached one means the insertion group was split
	// or reordered. CYIELDs (scavenger spacing, §3.3) may sit anywhere.
	for p, in := range rewritten.Instrs {
		if isOriginal[p] || in.Op != isa.OpYield {
			continue
		}
		// SFI hardening may interleave guards between the yield and its
		// memory operation (the co-design shadow, internal/sfi), so skip
		// inserted CHECKs when locating the exposed instruction.
		next := p + 1
		for next < len(rewritten.Instrs) && !isOriginal[next] &&
			rewritten.Instrs[next].Op == isa.OpCheck {
			next++
		}
		ok := next < len(rewritten.Instrs) && isOriginal[next]
		if ok {
			switch rewritten.Instrs[next].Op {
			case isa.OpLoad, isa.OpStore, isa.OpAccWait:
			default:
				ok = false
			}
		}
		if !ok {
			rep.add(RuleYieldPolicy, SevWarning, p, -1,
				"inserted YIELD is not immediately followed by the original memory operation it exposes")
		}
	}

	entries := opts.Entries
	if len(entries) == 0 && len(rewritten.Instrs) > 0 {
		entries = []int{0}
	}
	checkReachability(rep, g, rewritten, entries, groupStart, oldToNew, isOriginal)

	if opts.SFI != nil {
		checkSFI(rep, rewritten, *opts.SFI)
	}
	sortDiags(rep)
	return rep
}

// oldOf recovers the original index mapped to rewritten position p, -1
// if p is an insertion. oldToNew is strictly increasing.
func oldOf(oldToNew []int, p int) int {
	i := sort.SearchInts(oldToNew, p)
	if i < len(oldToNew) && oldToNew[i] == p {
		return i
	}
	return -1
}

// checkReachability proves the two whole-program closure rules over the
// rewritten CFG:
//
//   - call-discipline: no RET is reachable from an entry block through
//     intraprocedural edges alone. The CFG treats CALL as an opaque
//     fall-through (see bincfg), so blocks reached this way execute in
//     the entry's own frame, where a RET pops an empty return stack —
//     a guaranteed runtime fault.
//   - unreachable-group: every non-empty insertion group must be
//     executable: reachable from an entry through the CFG extended with
//     CALL edges. Instrumentation in dead code means the policy
//     consumed stale profile PCs or the image was corrupted.
func checkReachability(rep *Report, g *bincfg.CFG, rewritten *isa.Program,
	entries []int, groupStart, oldToNew []int, isOriginal []bool) {
	if len(g.Blocks) == 0 {
		return
	}
	entries = append([]int(nil), entries...)
	sort.Ints(entries)

	// Frame reachability: entry blocks, following CFG edges only.
	inFrame := make([]bool, len(g.Blocks))
	var stack []int
	push := func(b int, seen []bool) {
		if !seen[b] {
			seen[b] = true
			stack = append(stack, b)
		}
	}
	for _, e := range entries {
		if e < 0 || e >= len(rewritten.Instrs) {
			rep.add(RuleMapping, SevError, e, -1, "entry point outside program")
			continue
		}
		push(g.BlockOf(e).ID, inFrame)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[id].Succs {
			push(s, inFrame)
		}
	}
	for _, b := range g.Blocks {
		if !inFrame[b.ID] {
			continue
		}
		for p := b.Start; p < b.End; p++ {
			if rewritten.Instrs[p].Op == isa.OpRet {
				rep.add(RuleCallDiscipline, SevError, p, oldOf(oldToNew, p),
					"RET reachable from an entry without an intervening CALL (return-stack underflow)")
			}
		}
	}

	// Executable closure: frame blocks plus, transitively, every CALL
	// target of an executable block.
	executable := make([]bool, len(g.Blocks))
	for _, e := range entries {
		if e >= 0 && e < len(rewritten.Instrs) {
			push(g.BlockOf(e).ID, executable)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := g.Blocks[id]
		for p := b.Start; p < b.End; p++ {
			if rewritten.Instrs[p].Op == isa.OpCall {
				push(g.BlockOf(rewritten.Instrs[p].Target()).ID, executable)
			}
		}
		for _, s := range b.Succs {
			push(s, executable)
		}
	}
	for i, gs := range groupStart {
		if gs == oldToNew[i] {
			continue // empty group
		}
		if !executable[g.BlockOf(gs).ID] {
			rep.add(RuleUnreachableGroup, SevError, gs, i,
				"insertion group of %d instructions before old pc %d is unreachable from any entry",
				oldToNew[i]-gs, i)
		}
	}
}

// checkSFI enforces the guard discipline of an SFI-hardened image: each
// guarded memory access must be dominated — immediately — by a CHECK of
// the same address expression, or (CoDesign) by a yield whose context
// switch shadows the 1-cycle bounds check (internal/sfi, paper §4.2).
func checkSFI(rep *Report, rewritten *isa.Program, opts sfi.Options) {
	for p, in := range rewritten.Instrs {
		switch in.Op {
		case isa.OpLoad:
		case isa.OpStore:
			if !opts.GuardStores {
				continue
			}
		default:
			continue
		}
		if p > 0 {
			prev := rewritten.Instrs[p-1]
			if prev.Op == isa.OpCheck && prev.Rs1 == in.Rs1 && prev.Imm == in.Imm {
				continue
			}
			if opts.CoDesign && prev.Op == isa.OpYield {
				continue
			}
		}
		rep.add(RuleSFI, SevError, p, -1,
			"%v has no preceding CHECK guarding [r%d%+d]", in.Op, in.Rs1, in.Imm)
	}
}

// sortDiags orders findings by position (positionless first), then rule,
// so reports are deterministic regardless of pass order.
func sortDiags(rep *Report) {
	sort.SliceStable(rep.Diags, func(i, j int) bool {
		a, b := rep.Diags[i], rep.Diags[j]
		if a.NewPC != b.NewPC {
			return a.NewPC < b.NewPC
		}
		return a.Rule < b.Rule
	})
}

package instrument

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/coro"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pebs"
	"repro/internal/profile"
)

func TestRewriterRelocation(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r2, 10     ; 0
    loop:
        load r1, [r2]   ; 1
        addi r2, r2, 8  ; 2
        cmpi r2, 100    ; 3
        jlt loop        ; 4 -> 1
        halt            ; 5
    `)
	rw := NewRewriter(prog)
	rw.InsertBefore(1, isa.Instr{Op: isa.OpPrefetch, Rs1: 2}, isa.Instr{Op: isa.OpYield, Imm: int64(isa.AllRegs)})
	out, oldToNew, err := rw.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Instrs) != 8 {
		t.Fatalf("got %d instructions, want 8", len(out.Instrs))
	}
	// The jump must now target the prefetch (group start), index 1.
	jlt := out.Instrs[oldToNew[4]]
	if jlt.Op != isa.OpJlt || jlt.Target() != 1 {
		t.Errorf("relocated branch: %v (want target 1)", jlt)
	}
	if oldToNew[1] != 3 {
		t.Errorf("oldToNew[1] = %d, want 3", oldToNew[1])
	}
	if out.Instrs[1].Op != isa.OpPrefetch || out.Instrs[2].Op != isa.OpYield {
		t.Error("inserted group misplaced")
	}
	// Symbols remap to the group start.
	if out.Symbols["loop"] != 1 {
		t.Errorf("symbol loop = %d, want 1", out.Symbols["loop"])
	}
}

func TestRewriterForwardBranchRelocation(t *testing.T) {
	prog := isa.MustAssemble(`
        cmpi r1, 0      ; 0
        jeq skip        ; 1 -> 3
        movi r2, 1      ; 2
    skip:
        halt            ; 3
    `)
	rw := NewRewriter(prog)
	rw.InsertBefore(3, isa.Instr{Op: isa.OpCYield, Imm: int64(isa.AllRegs)})
	out, oldToNew, err := rw.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if out.Instrs[oldToNew[1]].Target() != 3 {
		t.Errorf("forward branch should target inserted cyield at 3, got %d", out.Instrs[oldToNew[1]].Target())
	}
}

func TestRewriterRejectsInsertedBranches(t *testing.T) {
	prog := isa.MustAssemble("halt")
	rw := NewRewriter(prog)
	rw.InsertBefore(0, isa.Instr{Op: isa.OpJmp, Imm: 0})
	if _, _, err := rw.Apply(); err == nil {
		t.Error("inserted branch should be rejected")
	}
}

func TestRewriterNoInsertsIsIdentity(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r1, 1
        jmp end
        nop
    end:
        halt
    `)
	out, oldToNew, err := NewRewriter(prog).Apply()
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog.Instrs {
		if oldToNew[i] != i || out.Instrs[i] != prog.Instrs[i] {
			t.Fatalf("identity rewrite changed instruction %d", i)
		}
	}
}

func TestGainModel(t *testing.T) {
	site := Site{
		MissRate:        0.9,
		ExpectedMissLat: 300,
		SwitchCost:      48,
		Absorb:          4,
	}
	if site.Gain() <= 0 {
		t.Errorf("hot miss site should have positive gain, got %f", site.Gain())
	}
	cold := site
	cold.MissRate = 0.01
	if cold.Gain() >= 0 {
		t.Errorf("cold site should have negative gain, got %f", cold.Gain())
	}
	// Gain is monotone in miss rate.
	prev := -1e18
	for r := 0.0; r <= 1.0; r += 0.1 {
		s := site
		s.MissRate = r
		if g := s.Gain(); g < prev {
			t.Fatalf("gain not monotone at rate %f", r)
		} else {
			prev = g
		}
	}
}

func TestPolicies(t *testing.T) {
	hot := Site{PC: 1, MissRate: 0.9, Execs: 100, StallCycles: 10000, ExpectedMissLat: 300, SwitchCost: 48, Absorb: 4}
	cold := Site{PC: 2, MissRate: 0.05, Execs: 100, StallCycles: 10, ExpectedMissLat: 300, SwitchCost: 48, Absorb: 4}

	th := ThresholdPolicy{MinMissRate: 0.5}
	if !th.Decide(hot) || th.Decide(cold) {
		t.Error("threshold policy wrong")
	}
	cb := CostBenefitPolicy{}
	if !cb.Decide(hot) || cb.Decide(cold) {
		t.Error("cost-benefit policy wrong")
	}
	topk := NewTopKPolicy(1, []Site{hot, cold})
	if !topk.Decide(hot) || topk.Decide(cold) {
		t.Error("topk policy wrong")
	}
	if NewTopKPolicy(5, []Site{hot, cold, {PC: 3}}).Decide(Site{PC: 3}) {
		t.Error("topk must skip zero-stall sites")
	}
	if (NeverPolicy{}).Decide(hot) || !(AlwaysPolicy{}).Decide(hot) {
		t.Error("never/always wrong")
	}
	if (AlwaysPolicy{}).Decide(Site{}) {
		t.Error("always policy needs evidence of execution")
	}
	for _, p := range []Policy{th, cb, topk, NeverPolicy{}, AlwaysPolicy{}} {
		if p.Name() == "" {
			t.Error("empty policy name")
		}
	}
}

// chaseProfile fabricates a profile marking pc as a hot DRAM-missing load.
func chaseProfile(progLen int, hotPCs ...int) *profile.Profile {
	var samples []pebs.Sample
	for _, pc := range hotPCs {
		samples = append(samples,
			pebs.Sample{Event: pebs.EvLoadRetired, PC: pc, Weight: 1000},
			pebs.Sample{Event: pebs.EvLoadL2Miss, PC: pc, Weight: 900},
			pebs.Sample{Event: pebs.EvLoadL3Miss, PC: pc, Weight: 900},
			pebs.Sample{Event: pebs.EvStallCycle, PC: pc, Weight: 250000},
		)
	}
	return profile.Build(progLen, samples, nil)
}

const chaseSrc = `
        movi r3, 100        ; 0: iterations
    loop:
        load r1, [r1]       ; 1: hot pointer chase
        addi r3, r3, -1     ; 2
        cmpi r3, 0          ; 3
        jgt loop            ; 4
        halt                ; 5
`

func TestPrimaryInstrumentsHotLoad(t *testing.T) {
	prog := isa.MustAssemble(chaseSrc)
	prof := chaseProfile(len(prog.Instrs), 1)
	opts := DefaultOptions()
	out, res, err := Primary(prog, prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Yields != 1 || res.Prefetches != 1 {
		t.Fatalf("yields=%d prefetches=%d, want 1/1", res.Yields, res.Prefetches)
	}
	if len(res.Sites) != 1 {
		t.Fatalf("sites: %+v", res.Sites)
	}
	s := res.Sites[0]
	if s.OldPC != 1 {
		t.Errorf("instrumented pc %d, want 1", s.OldPC)
	}
	// Layout: prefetch, yield, load.
	if out.Instrs[s.YieldPC].Op != isa.OpYield {
		t.Errorf("instr at YieldPC is %v", out.Instrs[s.YieldPC])
	}
	if out.Instrs[s.YieldPC-1].Op != isa.OpPrefetch {
		t.Errorf("prefetch missing before yield")
	}
	if out.Instrs[s.NewPC].Op != isa.OpLoad {
		t.Errorf("instr at NewPC is %v", out.Instrs[s.NewPC])
	}
	// Prefetch must use the load's address operands.
	pf := out.Instrs[s.YieldPC-1]
	if pf.Rs1 != 1 || pf.Imm != 0 {
		t.Errorf("prefetch operands wrong: %v", pf)
	}
	// Live mask: r1 (address/value chain), r3 (counter), SP. r2 dead.
	mask := out.Instrs[s.YieldPC].LiveMask()
	if !mask.Has(1) || !mask.Has(3) || !mask.Has(isa.SP) {
		t.Errorf("mask %v missing live registers", mask)
	}
	if mask.Has(2) || mask.Has(7) {
		t.Errorf("mask %v includes dead registers", mask)
	}
	// The loop branch must re-enter at the prefetch.
	var jgt isa.Instr
	for _, in := range out.Instrs {
		if in.Op == isa.OpJgt {
			jgt = in
		}
	}
	if jgt.Target() != s.YieldPC-1 {
		t.Errorf("loop branch targets %d, want %d", jgt.Target(), s.YieldPC-1)
	}
}

func TestPrimaryNeverPolicyLeavesProgramAlone(t *testing.T) {
	prog := isa.MustAssemble(chaseSrc)
	prof := chaseProfile(len(prog.Instrs), 1)
	opts := DefaultOptions()
	opts.Policy = NeverPolicy{}
	out, res, err := Primary(prog, prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Yields != 0 || len(out.Instrs) != len(prog.Instrs) {
		t.Error("never policy must not change the program")
	}
}

func TestPrimaryUnprofiledLoadIgnored(t *testing.T) {
	prog := isa.MustAssemble(chaseSrc)
	prof := profile.Build(len(prog.Instrs), nil, nil) // empty profile
	out, res, err := Primary(prog, prof, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Yields != 0 || len(out.Instrs) != len(prog.Instrs) {
		t.Error("unprofiled loads must not be instrumented")
	}
}

const coalesceSrc = `
        movi r2, 4096       ; 0
        movi r7, 50         ; 1
    loop:
        load r3, [r2]       ; 2: independent
        load r4, [r2+64]    ; 3: independent
        load r5, [r2+128]   ; 4: independent
        add r1, r3, r4      ; 5
        add r1, r1, r5      ; 6
        addi r2, r2, 192    ; 7
        addi r7, r7, -1     ; 8
        cmpi r7, 0          ; 9
        jgt loop            ; 10
        halt                ; 11
`

func TestCoalescing(t *testing.T) {
	prog := isa.MustAssemble(coalesceSrc)
	prof := chaseProfile(len(prog.Instrs), 2, 3, 4)
	opts := DefaultOptions()
	opts.Coalesce = true
	out, res, err := Primary(prog, prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Yields != 1 {
		t.Fatalf("coalesced yields = %d, want 1", res.Yields)
	}
	if res.Prefetches != 3 {
		t.Fatalf("prefetches = %d, want 3", res.Prefetches)
	}
	// Group layout: pf, pf, pf, yield, load, load, load.
	start := res.Sites[0].YieldPC - 3
	for i := 0; i < 3; i++ {
		if out.Instrs[start+i].Op != isa.OpPrefetch {
			t.Errorf("expected prefetch at %d", start+i)
		}
	}
	if out.Instrs[res.Sites[0].YieldPC].Op != isa.OpYield {
		t.Error("yield missing after prefetch group")
	}
	// Without coalescing: three yields.
	opts.Coalesce = false
	_, res2, err := Primary(prog, prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Yields != 3 {
		t.Errorf("uncoalesced yields = %d, want 3", res2.Yields)
	}
}

func TestCoalescingRespectsDependence(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r2, 4096
        load r3, [r2]       ; 1
        load r4, [r3]       ; 2: depends on 1
        mov r1, r4
        halt
    `)
	prof := chaseProfile(len(prog.Instrs), 1, 2)
	opts := DefaultOptions()
	opts.Coalesce = true
	_, res, err := Primary(prog, prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Yields != 2 {
		t.Errorf("dependent loads must not coalesce: yields = %d, want 2", res.Yields)
	}
}

func TestFullMaskOptionDisablesLiveness(t *testing.T) {
	prog := isa.MustAssemble(chaseSrc)
	prof := chaseProfile(len(prog.Instrs), 1)
	opts := DefaultOptions()
	opts.LiveMasks = false
	out, res, err := Primary(prog, prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Instrs[res.Sites[0].YieldPC].LiveMask() != isa.AllRegs {
		t.Error("full-mask option should save all registers")
	}
}

func TestScavengerLoopGuarantee(t *testing.T) {
	prog := isa.MustAssemble(chaseSrc)
	opts := DefaultScavengerOptions()
	opts.TargetInterval = 10000 // spacing pass never triggers
	out, res, err := Scavenger(prog, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.LoopYields != 1 {
		t.Fatalf("loop yields = %d, want 1", res.LoopYields)
	}
	if len(res.CondYieldPCs) != 1 {
		t.Fatalf("cond yields: %v", res.CondYieldPCs)
	}
	if out.Instrs[res.CondYieldPCs[0]].Op != isa.OpCYield {
		t.Error("cyield not at reported position")
	}
}

func TestScavengerSkipsLoopsWithYields(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r3, 10
    loop:
        yield
        addi r3, r3, -1
        cmpi r3, 0
        jgt loop
        halt
    `)
	opts := DefaultScavengerOptions()
	opts.TargetInterval = 10000
	_, res, err := Scavenger(prog, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.LoopYields != 0 {
		t.Errorf("loop with existing yield got %d insertions", res.LoopYields)
	}
}

func TestScavengerSpacing(t *testing.T) {
	// A long straight-line block of ~60 ALU cycles with a 25-cycle target
	// should get ~1-2 spacing yields.
	src := "    movi r1, 0\n"
	for i := 0; i < 60; i++ {
		src += "    addi r1, r1, 1\n"
	}
	src += "    halt\n"
	prog := isa.MustAssemble(src)
	opts := DefaultScavengerOptions()
	opts.TargetInterval = 25
	out, res, err := Scavenger(prog, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpacingYields < 1 {
		t.Fatalf("no spacing yields inserted")
	}
	// Verify actual spacing: distance between consecutive yields ≤ target
	// (each non-yield instruction is 1 cycle here).
	last := 0
	for i, in := range out.Instrs {
		if in.Op == isa.OpCYield {
			if i-last > 26 {
				t.Errorf("yield gap %d exceeds target", i-last)
			}
			last = i
		}
	}
}

func TestScavengerUsesLoadLatencyEstimates(t *testing.T) {
	// Two hot loads of ~300 cycles each: with a 100-cycle target, a yield
	// must separate them even though only ~6 instructions exist.
	prog := isa.MustAssemble(`
        movi r2, 4096
        movi r4, 8192
        load r3, [r2]
        add r1, r1, r3
        load r5, [r4]
        add r1, r1, r5
        halt
    `)
	prof := chaseProfile(len(prog.Instrs), 2, 4)
	opts := DefaultScavengerOptions()
	opts.TargetInterval = 100
	_, res, err := Scavenger(prog, prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpacingYields == 0 {
		t.Error("expected spacing yield between expensive loads")
	}
}

func TestRemapProfile(t *testing.T) {
	prof := chaseProfile(10, 3)
	prof.Edges = append(prof.Edges, profile.EdgeCount{From: 5, To: 1, Count: 9})
	prof.Blocks = append(prof.Blocks, profile.BlockLatency{StartPC: 1, AvgCycles: 42, Samples: 3})
	oldToNew := []int{0, 1, 2, 6, 7, 8, 9, 10, 11, 12} // inserts before 3
	q := RemapProfile(prof, oldToNew, 13)
	if q.Site(6) == nil || q.Site(3) != nil {
		t.Error("site remap wrong")
	}
	if q.Edges[0].From != 8 || q.Edges[0].To != 1 {
		t.Errorf("edge remap wrong: %+v", q.Edges[0])
	}
	if q.Blocks[0].StartPC != 1 {
		t.Errorf("block remap wrong: %+v", q.Blocks[0])
	}
	if q.ProgramLen != 13 {
		t.Error("program length not updated")
	}
}

func TestPipelineCompose(t *testing.T) {
	prog := isa.MustAssemble(chaseSrc)
	img := isa.Encode(prog)
	prof := chaseProfile(len(prog.Instrs), 1)
	opts := DefaultPipelineOptions()
	opts.Scavenger.TargetInterval = 50
	out, res, err := InstrumentImage(img, prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	final := isa.MustDecode(out)
	// The composed mapping must point at the original instructions.
	for old, nw := range res.OldToNew {
		if final.Instrs[nw].Op != prog.Instrs[old].Op {
			t.Errorf("composed map wrong at %d -> %d: %v vs %v", old, nw, final.Instrs[nw], prog.Instrs[old])
		}
	}
	// Primary sites must point at loads and yields in the final binary.
	for _, s := range res.Primary.Sites {
		if final.Instrs[s.NewPC].Op != isa.OpLoad {
			t.Errorf("site NewPC %d is %v", s.NewPC, final.Instrs[s.NewPC])
		}
		if final.Instrs[s.YieldPC].Op != isa.OpYield {
			t.Errorf("site YieldPC %d is %v", s.YieldPC, final.Instrs[s.YieldPC])
		}
	}
	if res.Scavenger == nil {
		t.Fatal("scavenger phase missing")
	}
}

// runSolo executes a program to completion on a fresh machine, ignoring
// yields (no other coroutine to switch to), and returns the result
// register and a memory snapshot.
func runSolo(t *testing.T, prog *isa.Program, seed int64) (uint64, []byte) {
	t.Helper()
	m := mem.NewMemory(1 << 22)
	// Build a deterministic pointer web the programs can chase without
	// faulting: a ring of pointers at 4096..4096+8*1024.
	rng := rand.New(rand.NewSource(seed))
	base := m.Alloc(8*1024+64, 64)
	for i := 0; i < 1024; i++ {
		m.MustWrite64(base+uint64(i)*8, base+uint64(rng.Intn(1024))*8)
	}
	h := mem.MustNewHierarchy(mem.DefaultConfig())
	core := cpu.MustNewCore(cpu.DefaultConfig(), prog, m, h)
	ctx := coro.NewContext(0, 0, m.Size()-8)
	ctx.Regs[1] = base
	ctx.Regs[2] = base
	var r cpu.StepResult
	for i := 0; i < 1_000_000; i++ {
		if err := core.StepInto(ctx, false, &r); err != nil {
			t.Fatalf("step: %v", err)
		}
		if r.Halted {
			return ctx.Result, m.Snapshot()
		}
	}
	t.Fatal("program did not halt")
	return 0, nil
}

// TestInstrumentationPreservesSemantics is the load-bearing property test:
// for random profiles and policies, the instrumented binary computes the
// same result and memory state as the original.
func TestInstrumentationPreservesSemantics(t *testing.T) {
	progs := []string{chaseSrc, coalesceSrc, `
        movi r2, 64
        movi r3, 0
        movi r4, 20
    loop:
        store [r2], r4
        load r5, [r2]
        add r3, r3, r5
        addi r2, r2, 8
        addi r4, r4, -1
        cmpi r4, 0
        jgt loop
        mov r1, r3
        halt
    `}
	rng := rand.New(rand.NewSource(99))
	for pi, src := range progs {
		prog := isa.MustAssemble(src)
		wantRes, wantMem := runSolo(t, prog, 7)
		for trial := 0; trial < 10; trial++ {
			// Random profile: each load flagged hot with random rates.
			var samples []pebs.Sample
			for i, in := range prog.Instrs {
				if in.Op != isa.OpLoad || rng.Intn(2) == 0 {
					continue
				}
				execs := uint64(100 + rng.Intn(1000))
				misses := uint64(rng.Intn(int(execs)))
				samples = append(samples,
					pebs.Sample{Event: pebs.EvLoadRetired, PC: i, Weight: execs},
					pebs.Sample{Event: pebs.EvLoadL2Miss, PC: i, Weight: misses},
					pebs.Sample{Event: pebs.EvStallCycle, PC: i, Weight: misses * 250},
				)
			}
			prof := profile.Build(len(prog.Instrs), samples, nil)
			opts := DefaultPipelineOptions()
			opts.Primary.Coalesce = rng.Intn(2) == 0
			opts.Primary.LiveMasks = rng.Intn(2) == 0
			switch rng.Intn(3) {
			case 0:
				opts.Primary.Policy = ThresholdPolicy{MinMissRate: rng.Float64()}
			case 1:
				opts.Primary.Policy = AlwaysPolicy{}
			default:
				opts.Primary.Policy = CostBenefitPolicy{}
			}
			so := DefaultScavengerOptions()
			so.TargetInterval = uint64(20 + rng.Intn(500))
			so.LiveMasks = opts.Primary.LiveMasks
			opts.Scavenger = &so
			img, _, err := InstrumentImage(isa.Encode(prog), prof, opts)
			if err != nil {
				t.Fatalf("prog %d trial %d: %v", pi, trial, err)
			}
			got, gotMem := runSolo(t, isa.MustDecode(img), 7)
			if got != wantRes {
				t.Fatalf("prog %d trial %d: result %d != %d", pi, trial, got, wantRes)
			}
			if !bytes.Equal(gotMem, wantMem) {
				t.Fatalf("prog %d trial %d: memory state diverged", pi, trial)
			}
		}
	}
}

func TestScavengerRejectsZeroInterval(t *testing.T) {
	prog := isa.MustAssemble("halt")
	if _, _, err := Scavenger(prog, nil, ScavengerOptions{}); err == nil {
		t.Error("zero interval should be rejected")
	}
}

func TestPrimaryRejectsNilPolicy(t *testing.T) {
	prog := isa.MustAssemble("halt")
	if _, _, err := Primary(prog, profile.Build(1, nil, nil), Options{}); err == nil {
		t.Error("nil policy should be rejected")
	}
}

func TestBudgetPolicy(t *testing.T) {
	// Site A: huge benefit, no waste. Site B: good benefit, expensive
	// waste. Site C: negative gain.
	a := Site{PC: 1, MissRate: 0.95, Execs: 1000, StallCycles: 250000, ExpectedMissLat: 300, SwitchCost: 48, Absorb: 4}
	bSite := Site{PC: 2, MissRate: 0.5, Execs: 1000, StallCycles: 100000, ExpectedMissLat: 300, SwitchCost: 48, Absorb: 4}
	c := Site{PC: 3, MissRate: 0.01, Execs: 1000, StallCycles: 10, ExpectedMissLat: 300, SwitchCost: 48, Absorb: 4}
	sites := []Site{a, bSite, c}

	// Generous budget: A and B selected, C never (negative gain).
	p := NewBudgetPolicy(1e9, sites)
	if !p.Decide(a) || !p.Decide(bSite) || p.Decide(c) {
		t.Error("generous budget selection wrong")
	}
	// Tight budget: only A fits (its waste is 0.05*1000*48 = 2400).
	p = NewBudgetPolicy(3000, sites)
	if !p.Decide(a) || p.Decide(bSite) {
		t.Error("tight budget selection wrong")
	}
	// Zero budget with zero-waste site: A still selected.
	aa := a
	aa.MissRate = 1.0
	p = NewBudgetPolicy(0, []Site{aa})
	if !p.Decide(aa) {
		t.Error("free site should fit any budget")
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestBudgetPolicyEndToEnd(t *testing.T) {
	prog := isa.MustAssemble(chaseSrc)
	prof := chaseProfile(len(prog.Instrs), 1)
	opts := DefaultOptions()
	opts.Policy = NewBudgetPolicy(1e9, BuildSites(prog, prof, opts))
	_, res, err := Primary(prog, prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Yields != 1 {
		t.Errorf("yields = %d", res.Yields)
	}
}

func TestVerifyAcceptsPipelineOutput(t *testing.T) {
	prog := isa.MustAssemble(coalesceSrc)
	prof := chaseProfile(len(prog.Instrs), 2, 3, 4)
	opts := DefaultPipelineOptions()
	opts.Scavenger.TargetInterval = 40
	img, res, err := InstrumentImage(isa.Encode(prog), prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	final := isa.MustDecode(img)
	if err := Verify(prog, final, res.OldToNew); err != nil {
		t.Fatalf("pipeline output fails its own verification: %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	prog := isa.MustAssemble(chaseSrc)
	prof := chaseProfile(len(prog.Instrs), 1)
	img, res, err := InstrumentImage(isa.Encode(prog), prof, DefaultPipelineOptions())
	if err != nil {
		t.Fatal(err)
	}
	good := isa.MustDecode(img)

	// Tamper 1: change an original instruction.
	bad := good.Clone()
	bad.Instrs[res.OldToNew[0]].Imm++
	if err := Verify(prog, bad, res.OldToNew); err == nil {
		t.Error("changed original instruction accepted")
	}

	// Tamper 2: replace an inserted yield with an effectful instruction.
	bad = good.Clone()
	for i, in := range bad.Instrs {
		if in.Op == isa.OpYield {
			bad.Instrs[i] = isa.Instr{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: 1}
			break
		}
	}
	if err := Verify(prog, bad, res.OldToNew); err == nil {
		t.Error("effectful insertion accepted")
	}

	// Tamper 3: retarget a branch into the middle of a group.
	bad = good.Clone()
	for i, in := range bad.Instrs {
		if in.Op.IsConditional() {
			bad.Instrs[i].Imm = int64(res.OldToNew[1]) // the load itself, not its group start
			break
		}
	}
	if err := Verify(prog, bad, res.OldToNew); err == nil {
		t.Error("mid-group branch target accepted")
	}

	// Tamper 4: broken mapping.
	badMap := append([]int(nil), res.OldToNew...)
	badMap[2], badMap[3] = badMap[3], badMap[2]
	if err := Verify(prog, good, badMap); err == nil {
		t.Error("non-monotone mapping accepted")
	}
	if err := Verify(prog, good, badMap[:2]); err == nil {
		t.Error("short mapping accepted")
	}
}

func TestVerifyAccumulatesViolations(t *testing.T) {
	prog := isa.MustAssemble(coalesceSrc)
	prof := chaseProfile(len(prog.Instrs), 2, 3, 4)
	img, res, err := InstrumentImage(isa.Encode(prog), prof, DefaultPipelineOptions())
	if err != nil {
		t.Fatal(err)
	}
	good := isa.MustDecode(img)

	// Seed two independent defects: an altered original and an effectful
	// insertion. One Verify call must report both.
	bad := good.Clone()
	bad.Instrs[res.OldToNew[0]].Imm++
	for i, in := range bad.Instrs {
		if in.Op == isa.OpYield {
			bad.Instrs[i] = isa.Instr{Op: isa.OpAddI, Rd: 1, Rs1: 1, Imm: 1}
			break
		}
	}
	err = Verify(prog, bad, res.OldToNew)
	var verr *VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("want *VerifyError, got %T (%v)", err, err)
	}
	rules := map[string]bool{}
	for _, v := range verr.Violations {
		rules[v.Rule] = true
	}
	if !rules["original-changed"] || !rules["effect-free"] {
		t.Errorf("want both original-changed and effect-free violations, got %v", verr.Violations)
	}
}

func TestStoreInstrumentation(t *testing.T) {
	// A store-heavy kernel: the store at pc=2 should get an RFO prefetch
	// plus yield when the profile marks it hot.
	prog := isa.MustAssemble(`
        movi r3, 100
    loop:
        muli r2, r2, 13
        store [r2], r3       ; 2: hot scattered store
        addi r3, r3, -1
        cmpi r3, 0
        jgt loop
        halt
    `)
	var samples []pebs.Sample
	samples = append(samples,
		pebs.Sample{Event: pebs.EvStoreRetired, PC: 2, Weight: 1000},
		pebs.Sample{Event: pebs.EvStoreL2Miss, PC: 2, Weight: 900},
		pebs.Sample{Event: pebs.EvStoreL3Miss, PC: 2, Weight: 900},
		pebs.Sample{Event: pebs.EvStallCycle, PC: 2, Weight: 250000},
	)
	prof := profile.Build(len(prog.Instrs), samples, nil)
	out, res, err := Primary(prog, prof, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Yields != 1 || res.Prefetches != 1 {
		t.Fatalf("yields=%d prefetches=%d, want 1/1", res.Yields, res.Prefetches)
	}
	st := res.Sites[0]
	if out.Instrs[st.NewPC].Op != isa.OpStore {
		t.Errorf("site NewPC is %v, want the store", out.Instrs[st.NewPC])
	}
	pf := out.Instrs[st.YieldPC-1]
	if pf.Op != isa.OpPrefetch || pf.Rs1 != 2 {
		t.Errorf("RFO prefetch wrong: %v", pf)
	}
}

func TestScavengerSpacingGuarantee(t *testing.T) {
	// A long straight-line body plus a yield-free loop: after the
	// scavenger phase, the static audit must find no yield-free loops and
	// no gap beyond target + one instruction.
	src := "    movi r1, 0\n"
	for i := 0; i < 120; i++ {
		src += "    addi r1, r1, 1\n"
	}
	src += `
    movi r2, 50
    sp:
    addi r1, r1, 2
    addi r2, r2, -1
    cmpi r2, 0
    jgt sp
    halt
`
	prog := isa.MustAssemble(src)
	opts := DefaultScavengerOptions()
	opts.TargetInterval = 30
	out, _, err := Scavenger(prog, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckScavengerSpacing(out, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LoopsWithoutYield != 0 {
		t.Errorf("loops without yields: %d", rep.LoopsWithoutYield)
	}
	if rep.MaxGap > float64(opts.TargetInterval)+rep.MaxStep {
		t.Errorf("max gap %.0f exceeds target %d + max step %.0f",
			rep.MaxGap, opts.TargetInterval, rep.MaxStep)
	}

	// The audit must flag the uninstrumented program.
	repBad, err := CheckScavengerSpacing(prog, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if repBad.LoopsWithoutYield == 0 {
		t.Error("audit missed the yield-free loop")
	}
	if repBad.MaxGap <= float64(opts.TargetInterval) {
		t.Error("audit missed the oversized gap")
	}
}

func TestInstrumentationDeterminism(t *testing.T) {
	// Reproducible builds: identical inputs must yield bit-identical
	// images (maps anywhere in the pipeline would break this).
	prog := isa.MustAssemble(coalesceSrc)
	prof := chaseProfile(len(prog.Instrs), 2, 3, 4)
	opts := DefaultPipelineOptions()
	opts.Scavenger.TargetInterval = 60
	imgA, _, err := InstrumentImage(isa.Encode(prog), prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	imgB, _, err := InstrumentImage(isa.Encode(prog), prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(imgA.Words) != len(imgB.Words) {
		t.Fatal("nondeterministic image length")
	}
	for i := range imgA.Words {
		if imgA.Words[i] != imgB.Words[i] {
			t.Fatalf("nondeterministic instrumentation at word %d", i)
		}
	}
}

func TestPipelineIdentityWhenDisabled(t *testing.T) {
	prog := isa.MustAssemble(chaseSrc)
	prof := chaseProfile(len(prog.Instrs), 1)
	opts := PipelineOptions{Primary: DefaultOptions()}
	opts.Primary.Policy = NeverPolicy{}
	opts.Scavenger = nil
	img, res, err := InstrumentImage(isa.Encode(prog), prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if img.Len() != len(prog.Instrs) {
		t.Error("disabled pipeline changed the binary")
	}
	for i, nw := range res.OldToNew {
		if nw != i {
			t.Fatal("identity mapping expected")
		}
	}
}

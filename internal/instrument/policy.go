package instrument

import (
	"fmt"

	"repro/internal/mem"
)

// Site carries the per-load statistics a policy decides on. All
// quantities are profile estimates.
type Site struct {
	PC int
	// MissRate is the estimated probability of missing L2.
	MissRate float64
	// DRAMFraction is the estimated share of those misses served by DRAM.
	DRAMFraction float64
	// Execs estimates how often the load retires.
	Execs float64
	// StallCycles estimates total exposed stall attributed to the load.
	StallCycles float64
	// ExpectedMissLat is the latency of a miss in cycles, blended from
	// DRAMFraction over the machine's L3/DRAM latencies.
	ExpectedMissLat float64
	// SwitchCost is the modelled cost of one yield round trip (switch out
	// plus eventual switch back) in cycles.
	SwitchCost float64
	// Absorb is the pipeline-absorbable latency (no gain below it).
	Absorb float64
}

// Gain returns the modelled expected benefit of instrumenting the site,
// in cycles per execution: hidden stall on a miss, minus wasted switch
// overhead on a hit. This is the paper's §3.2 quantitative gain/cost
// model.
func (s Site) Gain() float64 {
	hidden := s.ExpectedMissLat - s.Absorb
	if hidden < 0 {
		hidden = 0
	}
	// On a miss we still pay the switch, but it runs concurrently with
	// the fill; the exposed cost is bounded by the switch overhead beyond
	// the fill (negligible here). On a hit the full round trip is wasted.
	return s.MissRate*(hidden-s.SwitchCost) - (1-s.MissRate)*s.SwitchCost
}

// Policy decides whether to instrument a load site.
type Policy interface {
	// Decide reports whether to place a prefetch+yield at the site.
	Decide(Site) bool
	// Name identifies the policy in reports.
	Name() string
}

// ThresholdPolicy instruments every load whose estimated miss rate is at
// least MinMissRate — the paper's "simple policy".
type ThresholdPolicy struct {
	MinMissRate float64
}

// Decide implements Policy.
func (p ThresholdPolicy) Decide(s Site) bool { return s.MissRate >= p.MinMissRate }

// Name implements Policy.
func (p ThresholdPolicy) Name() string { return fmt.Sprintf("threshold(%.2f)", p.MinMissRate) }

// CostBenefitPolicy instruments a load when the modelled expected gain
// exceeds MinGain cycles per execution.
type CostBenefitPolicy struct {
	MinGain float64
}

// Decide implements Policy.
func (p CostBenefitPolicy) Decide(s Site) bool { return s.Gain() > p.MinGain }

// Name implements Policy.
func (p CostBenefitPolicy) Name() string { return fmt.Sprintf("costbenefit(%.1f)", p.MinGain) }

// TopKPolicy instruments the K sites with the highest estimated total
// stall contribution. It needs the candidate set up front, so it is
// constructed via NewTopKPolicy.
type TopKPolicy struct {
	K      int
	chosen map[int]bool
}

// NewTopKPolicy selects the K heaviest stall contributors among sites.
func NewTopKPolicy(k int, sites []Site) *TopKPolicy {
	idx := make([]int, len(sites))
	for i := range sites {
		idx[i] = i
	}
	// Selection by stall contribution, heaviest first.
	for i := 0; i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if sites[idx[j]].StallCycles > sites[idx[best]].StallCycles {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	p := &TopKPolicy{K: k, chosen: map[int]bool{}}
	for i := 0; i < k && i < len(idx); i++ {
		if sites[idx[i]].StallCycles > 0 {
			p.chosen[sites[idx[i]].PC] = true
		}
	}
	return p
}

// Decide implements Policy.
func (p *TopKPolicy) Decide(s Site) bool { return p.chosen[s.PC] }

// Name implements Policy.
func (p *TopKPolicy) Name() string { return fmt.Sprintf("top%d", p.K) }

// NeverPolicy instruments nothing (baseline plumbing).
type NeverPolicy struct{}

// Decide implements Policy.
func (NeverPolicy) Decide(Site) bool { return false }

// Name implements Policy.
func (NeverPolicy) Name() string { return "never" }

// AlwaysPolicy instruments every sampled load (the paper's "aggressive"
// end of the trade-off).
type AlwaysPolicy struct{}

// Decide implements Policy.
func (AlwaysPolicy) Decide(s Site) bool { return s.Execs > 0 }

// Name implements Policy.
func (AlwaysPolicy) Name() string { return "always" }

// blendedMissLatency computes the expected miss service latency for a
// site given the machine's cache latencies.
func blendedMissLatency(dramFraction float64, m mem.Config) float64 {
	return dramFraction*float64(m.LatDRAM) + (1-dramFraction)*float64(m.LatL3)
}

// BudgetPolicy instruments sites in order of decreasing total expected
// benefit (per-execution gain × executions) while the cumulative expected
// wasted switch cost — executions that hit anyway — stays within
// MaxWasteCycles. It is the production-deployment shape of the gain/cost
// model: "spend at most this much overhead on instrumentation".
type BudgetPolicy struct {
	MaxWasteCycles float64
	chosen         map[int]bool
}

// NewBudgetPolicy greedily selects sites under the waste budget.
func NewBudgetPolicy(maxWasteCycles float64, sites []Site) *BudgetPolicy {
	idx := make([]int, len(sites))
	for i := range idx {
		idx[i] = i
	}
	total := func(s Site) float64 { return s.Gain() * s.Execs }
	for i := 0; i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if total(sites[idx[j]]) > total(sites[idx[best]]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	p := &BudgetPolicy{MaxWasteCycles: maxWasteCycles, chosen: map[int]bool{}}
	var spent float64
	for _, i := range idx {
		s := sites[i]
		if total(s) <= 0 {
			break
		}
		waste := s.Execs * (1 - s.MissRate) * s.SwitchCost
		if spent+waste > maxWasteCycles {
			continue
		}
		spent += waste
		p.chosen[s.PC] = true
	}
	return p
}

// Decide implements Policy.
func (p *BudgetPolicy) Decide(s Site) bool { return p.chosen[s.PC] }

// Name implements Policy.
func (p *BudgetPolicy) Name() string {
	return fmt.Sprintf("budget(%.0f)", p.MaxWasteCycles)
}

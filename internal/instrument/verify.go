package instrument

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Violation is one rule breach found by Verify. Rule names match the
// diagnostic rules of internal/check, which consumes the same facts but
// proves deeper properties (liveness, SFI, reachability).
type Violation struct {
	Rule  string `json:"rule"`
	OldPC int    `json:"old_pc"` // original-program index, -1 when not applicable
	NewPC int    `json:"new_pc"` // rewritten-program index, -1 when not applicable
	Msg   string `json:"msg"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] old=%d new=%d: %s", v.Rule, v.OldPC, v.NewPC, v.Msg)
}

// VerifyError aggregates every violation Verify found, so a broken
// rewrite reports its full damage in one pass instead of one finding per
// run.
type VerifyError struct {
	Violations []Violation
}

func (e *VerifyError) Error() string {
	if len(e.Violations) == 1 {
		return "instrument: verify: " + e.Violations[0].String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "instrument: verify: %d violations:", len(e.Violations))
	for _, v := range e.Violations {
		b.WriteString("\n\t")
		b.WriteString(v.String())
	}
	return b.String()
}

// Verify statically checks that an instrumented program is a sound
// rewrite of the original — the validation pass a production binary
// optimizer runs before shipping a rewritten binary:
//
//  1. The original instructions appear in the rewritten program, in
//     order, at the positions claimed by oldToNew (with branch targets
//     remapped to their group starts).
//  2. Every inserted instruction is effect-free (PREFETCH, YIELD, CYIELD,
//     CHECK or NOP) — nothing that could change architectural results.
//  3. Every branch in the rewritten program targets the remapped image of
//     an original target (no branch lands inside a different insertion
//     group).
//
// All violations are accumulated and returned as one *VerifyError; a nil
// return means the rewrite is positionally sound. Together with the
// runtime semantics tests these make a silent miscompile — the failure
// mode that ruins PGO deployments — structurally detectable. The deeper
// semantic properties (yield-mask liveness, SFI guard discipline,
// call/ret closure, insertion-group reachability) are proved by
// internal/check on top of the same mapping.
func Verify(orig, rewritten *isa.Program, oldToNew []int) error {
	var viols []Violation
	add := func(rule string, oldPC, newPC int, format string, args ...any) {
		viols = append(viols, Violation{Rule: rule, OldPC: oldPC, NewPC: newPC,
			Msg: fmt.Sprintf(format, args...)})
	}

	if len(oldToNew) != len(orig.Instrs) {
		add("mapping", -1, -1, "mapping covers %d of %d instructions", len(oldToNew), len(orig.Instrs))
		return &VerifyError{Violations: viols}
	}
	if err := rewritten.Validate(); err != nil {
		add("mapping", -1, -1, "rewritten program invalid: %v", err)
		return &VerifyError{Violations: viols}
	}

	// groupStart[i] = start of old instruction i's insertion group: the
	// end of the previous original instruction's image.
	n := len(orig.Instrs)
	groupStart := make([]int, n)
	prevEnd := 0
	monotone := true
	for i, nw := range oldToNew {
		if nw < prevEnd || nw >= len(rewritten.Instrs) {
			add("mapping", i, nw, "mapping not monotone or out of range")
			monotone = false
			break
		}
		groupStart[i] = prevEnd
		prevEnd = nw + 1
	}
	if !monotone {
		// The group layout is meaningless past the first mapping break;
		// later rules would only cascade noise.
		return &VerifyError{Violations: viols}
	}

	isOriginal := make([]bool, len(rewritten.Instrs))
	validTarget := make([]bool, len(rewritten.Instrs))
	for _, gs := range groupStart {
		validTarget[gs] = true
	}

	// Rule 1: originals in place (modulo branch-target remapping).
	for i, in := range orig.Instrs {
		nw := oldToNew[i]
		got := rewritten.Instrs[nw]
		isOriginal[nw] = true
		want := in
		if in.Op.IsBranch() {
			t := in.Target()
			if t < 0 || t >= n {
				add("mapping", i, nw, "original branch target %d outside program", t)
				continue
			}
			want.Imm = int64(groupStart[t])
		}
		if got != want {
			add("original-changed", i, nw, "instruction changed: %v -> %v", in, got)
		}
	}

	// Rule 2: insertions are effect-free.
	for i, in := range rewritten.Instrs {
		if isOriginal[i] {
			continue
		}
		switch in.Op {
		case isa.OpNop, isa.OpPrefetch, isa.OpYield, isa.OpCYield, isa.OpCheck:
		default:
			add("effect-free", -1, i, "inserted instruction (%v) is not effect-free", in)
		}
	}

	// Rule 3: all branches land on group starts of original targets.
	for i, in := range rewritten.Instrs {
		if in.Op.IsBranch() && !validTarget[in.Target()] {
			add("branch-target", -1, i, "branch targets %d, not a remapped original target", in.Target())
		}
	}
	if viols != nil {
		return &VerifyError{Violations: viols}
	}
	return nil
}

package instrument

import (
	"fmt"

	"repro/internal/isa"
)

// Verify statically checks that an instrumented program is a sound
// rewrite of the original — the validation pass a production binary
// optimizer runs before shipping a rewritten binary:
//
//  1. The original instructions appear in the rewritten program, in
//     order, at the positions claimed by oldToNew (with branch targets
//     remapped to their group starts).
//  2. Every inserted instruction is effect-free (PREFETCH, YIELD, CYIELD,
//     CHECK or NOP) — nothing that could change architectural results.
//  3. Every branch in the rewritten program targets the remapped image of
//     an original target (no branch lands inside a different insertion
//     group).
//
// Together with the runtime semantics tests these make a silent
// miscompile — the failure mode that ruins PGO deployments — structurally
// detectable.
func Verify(orig, rewritten *isa.Program, oldToNew []int) error {
	if len(oldToNew) != len(orig.Instrs) {
		return fmt.Errorf("instrument: verify: mapping covers %d of %d instructions",
			len(oldToNew), len(orig.Instrs))
	}
	if err := rewritten.Validate(); err != nil {
		return fmt.Errorf("instrument: verify: rewritten program invalid: %w", err)
	}

	// groupStart[i] = start of old instruction i's insertion group: the
	// end of the previous original instruction's image.
	groupStart := make(map[int]int, len(orig.Instrs))
	prevEnd := 0
	for i, nw := range oldToNew {
		if nw < prevEnd {
			return fmt.Errorf("instrument: verify: mapping not monotone at %d", i)
		}
		groupStart[i] = prevEnd
		prevEnd = nw + 1
	}

	isOriginal := make([]bool, len(rewritten.Instrs))
	validTargets := make(map[int]bool, len(orig.Instrs))
	for _, gs := range groupStart {
		validTargets[gs] = true
	}

	// Rule 1: originals in place (modulo branch-target remapping).
	for i, in := range orig.Instrs {
		nw := oldToNew[i]
		if nw >= len(rewritten.Instrs) {
			return fmt.Errorf("instrument: verify: instruction %d mapped past the end", i)
		}
		got := rewritten.Instrs[nw]
		isOriginal[nw] = true
		want := in
		if in.Op.IsBranch() {
			want.Imm = int64(groupStart[in.Target()])
		}
		if got != want {
			return fmt.Errorf("instrument: verify: instruction %d changed: %v -> %v (at %d)",
				i, in, got, nw)
		}
	}

	// Rule 2: insertions are effect-free.
	for i, in := range rewritten.Instrs {
		if isOriginal[i] {
			continue
		}
		switch in.Op {
		case isa.OpNop, isa.OpPrefetch, isa.OpYield, isa.OpCYield, isa.OpCheck:
		default:
			return fmt.Errorf("instrument: verify: inserted instruction %d (%v) is not effect-free", i, in)
		}
	}

	// Rule 3: all branches land on group starts of original targets.
	for i, in := range rewritten.Instrs {
		if in.Op.IsBranch() && !validTargets[in.Target()] {
			return fmt.Errorf("instrument: verify: branch at %d targets %d, not a remapped original target",
				i, in.Target())
		}
	}
	return nil
}

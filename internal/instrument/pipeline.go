package instrument

import (
	"repro/internal/isa"
	"repro/internal/profile"
)

// RemapProfile translates a profile's PCs through an old-to-new index
// mapping produced by a rewrite, so a later instrumentation phase can
// consume a profile collected against the pre-rewrite binary.
//
// Branch-target PCs in edges and block-latency records are mapped to the
// new position of the original instruction. When insertions precede a
// block entry this is one group off from the new block start; the
// scavenger phase treats missing block-latency lookups as "fall back to
// static estimates", so the approximation is safe.
func RemapProfile(p *profile.Profile, oldToNew []int, newLen int) *profile.Profile {
	q := &profile.Profile{
		ProgramLen:       newLen,
		TotalStallCycles: p.TotalStallCycles,
		TotalSamples:     p.TotalSamples,
	}
	mapPC := func(pc int) (int, bool) {
		if pc < 0 || pc >= len(oldToNew) {
			return 0, false
		}
		return oldToNew[pc], true
	}
	for _, s := range p.Sites {
		if npc, ok := mapPC(s.PC); ok {
			s.PC = npc
			q.Sites = append(q.Sites, s)
		}
	}
	for _, e := range p.Edges {
		nf, ok1 := mapPC(e.From)
		nt, ok2 := mapPC(e.To)
		if ok1 && ok2 {
			q.Edges = append(q.Edges, profile.EdgeCount{From: nf, To: nt, Count: e.Count})
		}
	}
	for _, b := range p.Blocks {
		if npc, ok := mapPC(b.StartPC); ok {
			b.StartPC = npc
			q.Blocks = append(q.Blocks, b)
		}
	}
	return q
}

// PipelineOptions configures the full §3.2+§3.3 instrumentation pipeline.
type PipelineOptions struct {
	Primary Options
	// Scavenger enables the scavenger phase when non-nil.
	Scavenger *ScavengerOptions
}

// DefaultPipelineOptions enables both phases with reference settings.
func DefaultPipelineOptions() PipelineOptions {
	so := DefaultScavengerOptions()
	return PipelineOptions{Primary: DefaultOptions(), Scavenger: &so}
}

// PipelineResult aggregates both phases' reports.
type PipelineResult struct {
	Primary   *PrimaryResult   `json:"primary"`
	Scavenger *ScavengerResult `json:"scavenger,omitempty"`
	// OldToNew composes both rewrites: original index -> final index.
	OldToNew []int `json:"old_to_new"`
}

// InstrumentImage runs the full pipeline on an encoded binary: decode,
// primary instrumentation, profile remapping, scavenger instrumentation,
// re-encode. This is the entry point the tools and the public API use.
func InstrumentImage(img *isa.Image, prof *profile.Profile, opts PipelineOptions) (*isa.Image, *PipelineResult, error) {
	prog, err := isa.Decode(img)
	if err != nil {
		return nil, nil, err
	}
	p1, pres, err := Primary(prog, prof, opts.Primary)
	if err != nil {
		return nil, nil, err
	}
	result := &PipelineResult{Primary: pres, OldToNew: pres.OldToNew}

	final := p1
	if opts.Scavenger != nil {
		remapped := RemapProfile(prof, pres.OldToNew, len(p1.Instrs))
		p2, sres, err := Scavenger(p1, remapped, *opts.Scavenger)
		if err != nil {
			return nil, nil, err
		}
		result.Scavenger = sres
		final = p2
		// Compose the mappings.
		composed := make([]int, len(pres.OldToNew))
		for i, mid := range pres.OldToNew {
			composed[i] = sres.OldToNew[mid]
		}
		result.OldToNew = composed
		for j := range result.Primary.Sites {
			s := &result.Primary.Sites[j]
			s.NewPC = sres.OldToNew[s.NewPC]
			s.YieldPC = sres.OldToNew[s.YieldPC]
		}
	}
	// Static soundness check before shipping the binary (see Verify).
	if err := Verify(prog, final, result.OldToNew); err != nil {
		return nil, nil, err
	}
	return isa.Encode(final), result, nil
}

// Package instrument implements the paper's core contribution:
// profile-guided yield instrumentation of binaries (§3.2) and scavenger
// instrumentation for asymmetric concurrency (§3.3).
//
// Everything operates at the binary level: the input is an encoded
// isa.Image, which is decoded, analyzed (CFG, liveness, dependence),
// rewritten with prefetch/yield insertions, relocated and re-encoded. No
// source-level information is consulted, which is precisely the paper's
// applicability argument for binary-level operation.
package instrument

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Rewriter accumulates insertions against a program and applies them in
// one pass with branch-target relocation.
//
// All insertions are positioned *before* an existing instruction index.
// Branches that targeted index t are redirected to the first instruction
// inserted before t — safe because insertions are effect-free
// (PREFETCH/YIELD/CYIELD/CHECK never change architectural results).
type Rewriter struct {
	prog    *isa.Program
	inserts map[int][]isa.Instr
}

// NewRewriter starts a rewrite of prog (which is not modified).
func NewRewriter(prog *isa.Program) *Rewriter {
	return &Rewriter{prog: prog, inserts: map[int][]isa.Instr{}}
}

// InsertBefore schedules instructions to execute immediately before the
// instruction currently at index i. Multiple calls append in order.
func (r *Rewriter) InsertBefore(i int, ins ...isa.Instr) {
	r.inserts[i] = append(r.inserts[i], ins...)
}

// PendingAt returns how many instructions are scheduled before index i.
func (r *Rewriter) PendingAt(i int) int { return len(r.inserts[i]) }

// Apply produces the rewritten program and the old-to-new index mapping
// for the original instructions.
func (r *Rewriter) Apply() (*isa.Program, []int, error) {
	n := len(r.prog.Instrs)
	oldToNew := make([]int, n)
	groupStart := make([]int, n+1) // new index of the insert-group for old index i

	// First pass: compute layout.
	pos := 0
	for i := 0; i < n; i++ {
		groupStart[i] = pos
		pos += len(r.inserts[i])
		oldToNew[i] = pos
		pos++
	}
	groupStart[n] = pos

	// Second pass: emit with relocation.
	out := &isa.Program{Instrs: make([]isa.Instr, 0, pos)}
	for i := 0; i < n; i++ {
		for _, ins := range r.inserts[i] {
			if ins.Op.IsBranch() {
				return nil, nil, fmt.Errorf("instrument: inserted instruction %v may not be a branch", ins)
			}
			out.Instrs = append(out.Instrs, ins)
		}
		in := r.prog.Instrs[i]
		if in.Op.IsBranch() {
			t := in.Target()
			if t < 0 || t >= n {
				return nil, nil, fmt.Errorf("instrument: instruction %d has invalid target %d", i, t)
			}
			in.Imm = int64(groupStart[t])
		}
		out.Instrs = append(out.Instrs, in)
	}
	if r.prog.Symbols != nil {
		out.Symbols = make(map[string]int, len(r.prog.Symbols))
		for name, idx := range r.prog.Symbols {
			if idx >= 0 && idx <= n {
				out.Symbols[name] = groupStart[idx]
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("instrument: rewrite produced invalid program: %w", err)
	}
	return out, oldToNew, nil
}

// InsertionPoints returns the old indices with pending insertions, sorted.
func (r *Rewriter) InsertionPoints() []int {
	pts := make([]int, 0, len(r.inserts))
	for i := range r.inserts {
		pts = append(pts, i)
	}
	sort.Ints(pts)
	return pts
}

package instrument

import (
	"fmt"

	"repro/internal/bincfg"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/profile"
)

// ScavengerOptions configures the scavenger instrumentation phase (§3.3):
// conditional yields placed so that, in scavenger mode, a coroutine never
// runs much longer than TargetInterval cycles without an opportunity to
// hand the CPU back to the primary.
type ScavengerOptions struct {
	// TargetInterval is the desired inter-yield distance in cycles. The
	// paper suggests an interval "bounded but sufficient to hide L2/L3
	// cache misses (e.g., 100 ns)" — 300 cycles at 3 GHz.
	TargetInterval uint64
	// LiveMasks enables liveness-derived save masks on inserted yields.
	LiveMasks bool

	Machine mem.Config
	CPU     cpu.Config
}

// DefaultScavengerOptions returns the reference configuration: a 300-cycle
// (100 ns) target interval.
func DefaultScavengerOptions() ScavengerOptions {
	return ScavengerOptions{
		TargetInterval: 300,
		LiveMasks:      true,
		Machine:        mem.DefaultConfig(),
		CPU:            cpu.DefaultConfig(),
	}
}

// ScavengerResult reports what the scavenger phase inserted.
type ScavengerResult struct {
	// CondYieldPCs are the positions of inserted CYIELDs in the rewritten
	// program.
	CondYieldPCs []int `json:"cond_yield_pcs"`
	// LoopYields counts insertions made to guarantee that every natural
	// loop contains a yield (the static worst-case bound).
	LoopYields int `json:"loop_yields"`
	// SpacingYields counts insertions made by the profile-guided spacing
	// walk.
	SpacingYields int   `json:"spacing_yields"`
	OldToNew      []int `json:"old_to_new"`
}

// Scavenger rewrites prog (typically the output of Primary) with
// conditional yields. The profile must be expressed in prog's PCs — use
// RemapProfile after Primary.
//
// Placement follows the paper: profile-guided insertion for the common
// case (LBR-derived block latencies calibrate the static per-instruction
// estimates), augmented with a static guarantee that bounds the worst
// case — every natural loop body contains at least one yield, so no
// unbounded path avoids yielding.
func Scavenger(prog *isa.Program, prof *profile.Profile, opts ScavengerOptions) (*isa.Program, *ScavengerResult, error) {
	if opts.TargetInterval == 0 {
		return nil, nil, fmt.Errorf("instrument: zero scavenger target interval")
	}
	g, err := bincfg.Build(prog)
	if err != nil {
		return nil, nil, err
	}
	live := bincfg.ComputeLiveness(g)
	dom := bincfg.ComputeDominators(g)
	loops := bincfg.NaturalLoops(g, dom)

	maskAt := func(pc int) isa.RegMask {
		if opts.LiveMasks {
			return live.LiveIn(pc)
		}
		return isa.AllRegs
	}

	// est estimates the latency of one instruction: base cost plus, for
	// profiled loads, the expected exposed memory latency.
	est := func(pc int) float64 {
		in := prog.Instrs[pc]
		c := float64(opts.CPU.BusyCost(in.Op))
		if in.Op == isa.OpAccWait && prof != nil {
			if ls := prof.Site(pc); ls != nil && ls.Execs > 0 {
				c += ls.StallCycles / ls.Execs
			}
		}
		if in.Op == isa.OpLoad || in.Op == isa.OpStore {
			c += float64(opts.Machine.LatL1)
			if prof != nil {
				if ls := prof.Site(pc); ls != nil {
					blend := blendedMissLatency(ls.DRAMFraction(), opts.Machine)
					c += ls.MissRate() * (blend - float64(opts.Machine.LatL1))
				}
			}
		}
		return c
	}

	// blockScale calibrates static estimates against LBR-observed block
	// latencies where available: if LBR saw the region entered at the
	// block's start run longer than the static sum, scale estimates up.
	blockScale := func(b *bincfg.Block) float64 {
		if prof == nil {
			return 1
		}
		obs, ok := prof.BlockLatencyAt(b.Start)
		if !ok {
			return 1
		}
		var static float64
		for i := b.Start; i < b.End; i++ {
			static += est(i)
		}
		if static <= 0 || obs <= static {
			return 1
		}
		return obs / static
	}

	res := &ScavengerResult{}
	planned := make(map[int]bool) // instruction indices getting a CYIELD before them

	// Pass 1 — static loop guarantee: every natural loop must contain a
	// yield (existing or planned).
	for _, l := range loops {
		hasYield := false
	scan:
		for _, id := range l.Blocks() {
			b := g.Blocks[id]
			for i := b.Start; i < b.End; i++ {
				if prog.Instrs[i].Op.IsYield() {
					hasYield = true
					break scan
				}
			}
		}
		if !hasYield {
			h := g.Blocks[l.Header]
			if !planned[h.Start] {
				planned[h.Start] = true
				res.LoopYields++
			}
		}
	}

	// Pass 2 — profile-guided spacing on the acyclic structure: walk in
	// reverse postorder accumulating distance since the last yield and
	// plan a CYIELD wherever it would exceed the target. Back edges are
	// covered by pass 1 (every loop now has a yield), so their
	// contribution to the entry distance is bounded by one iteration and
	// ignored here.
	target := float64(opts.TargetInterval)
	distOut := make([]float64, len(g.Blocks))
	for _, id := range g.ReversePostorder() {
		b := g.Blocks[id]
		var dist float64
		for _, p := range b.Preds {
			if dom.Dominates(id, p) {
				continue // back edge
			}
			if distOut[p] > dist {
				dist = distOut[p]
			}
		}
		scale := blockScale(b)
		for i := b.Start; i < b.End; i++ {
			if planned[i] {
				dist = 0
			}
			step := est(i) * scale
			if dist > 0 && dist+step > target {
				if !planned[i] {
					planned[i] = true
					res.SpacingYields++
				}
				dist = 0
			}
			dist += step
			if prog.Instrs[i].Op.IsYield() {
				dist = 0
			}
		}
		distOut[id] = dist
	}

	rw := NewRewriter(prog)
	for pc := range planned {
		rw.InsertBefore(pc, isa.Instr{Op: isa.OpCYield, Imm: int64(maskAt(pc))})
	}
	out, oldToNew, err := rw.Apply()
	if err != nil {
		return nil, nil, err
	}
	res.OldToNew = oldToNew
	for _, pc := range rw.InsertionPoints() {
		res.CondYieldPCs = append(res.CondYieldPCs, oldToNew[pc]-1)
	}
	return out, res, nil
}

// SpacingReport is the output of CheckScavengerSpacing: a static audit of
// the §3.3 promise that a scavenger-mode coroutine always reaches a yield
// within roughly the target interval.
type SpacingReport struct {
	// MaxGap is the largest estimated cycle distance between adjacent
	// yield opportunities along any acyclic path.
	MaxGap float64
	// MaxStep is the largest single-instruction estimate (a yield cannot
	// split an instruction, so MaxGap can legitimately reach
	// TargetInterval + MaxStep).
	MaxStep float64
	// LoopsWithoutYield counts natural loops whose body contains no yield
	// of either phase — unbounded yield-free paths.
	LoopsWithoutYield int
}

// CheckScavengerSpacing audits an (instrumented) program against the
// scavenger-phase placement rules, using the same latency estimates the
// instrumenter used. It is the static verifier for the §3.3 interval
// guarantee, the counterpart of Verify for the primary phase.
func CheckScavengerSpacing(prog *isa.Program, prof *profile.Profile, opts ScavengerOptions) (*SpacingReport, error) {
	g, err := bincfg.Build(prog)
	if err != nil {
		return nil, err
	}
	dom := bincfg.ComputeDominators(g)
	rep := &SpacingReport{}

	est := func(pc int) float64 {
		in := prog.Instrs[pc]
		c := float64(opts.CPU.BusyCost(in.Op))
		if in.Op == isa.OpAccWait && prof != nil {
			if ls := prof.Site(pc); ls != nil && ls.Execs > 0 {
				c += ls.StallCycles / ls.Execs
			}
		}
		if in.Op == isa.OpLoad || in.Op == isa.OpStore {
			c += float64(opts.Machine.LatL1)
			if prof != nil {
				if ls := prof.Site(pc); ls != nil {
					blend := blendedMissLatency(ls.DRAMFraction(), opts.Machine)
					c += ls.MissRate() * (blend - float64(opts.Machine.LatL1))
				}
			}
		}
		return c
	}

	for _, l := range bincfg.NaturalLoops(g, dom) {
		has := false
		for _, id := range l.Blocks() {
			b := g.Blocks[id]
			for i := b.Start; i < b.End; i++ {
				if prog.Instrs[i].Op.IsYield() {
					has = true
				}
			}
		}
		if !has {
			rep.LoopsWithoutYield++
		}
	}

	distOut := make([]float64, len(g.Blocks))
	for _, id := range g.ReversePostorder() {
		b := g.Blocks[id]
		var dist float64
		for _, p := range b.Preds {
			if dom.Dominates(id, p) {
				continue
			}
			if distOut[p] > dist {
				dist = distOut[p]
			}
		}
		for i := b.Start; i < b.End; i++ {
			step := est(i)
			if step > rep.MaxStep {
				rep.MaxStep = step
			}
			dist += step
			if dist > rep.MaxGap {
				rep.MaxGap = dist
			}
			if prog.Instrs[i].Op.IsYield() {
				dist = 0
			}
		}
		distOut[id] = dist
	}
	return rep, nil
}

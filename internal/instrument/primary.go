package instrument

import (
	"fmt"

	"repro/internal/bincfg"
	"repro/internal/coro"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/profile"
)

// Options configures primary instrumentation (§3.2).
type Options struct {
	// Policy decides which profiled loads get a prefetch+yield.
	Policy Policy
	// Coalesce enables yield coalescing across independent adjacent loads.
	Coalesce bool
	// LiveMasks enables liveness-derived save masks on inserted yields;
	// when false, yields save the full register file.
	LiveMasks bool

	// Machine and CPU supply latencies for the gain/cost model.
	Machine mem.Config
	CPU     cpu.Config
	// Switch prices the context switches the model weighs.
	Switch coro.CostModel
}

// DefaultOptions returns the reference instrumentation configuration: the
// cost-benefit policy with both optimizations on.
func DefaultOptions() Options {
	return Options{
		Policy:    CostBenefitPolicy{MinGain: 0},
		Coalesce:  true,
		LiveMasks: true,
		Machine:   mem.DefaultConfig(),
		CPU:       cpu.DefaultConfig(),
		Switch:    coro.DefaultCostModel(),
	}
}

// PrimarySite records one instrumented load.
type PrimarySite struct {
	OldPC    int         `json:"old_pc"`
	NewPC    int         `json:"new_pc"` // position of the load in the rewritten program
	YieldPC  int         `json:"yield_pc"`
	MissRate float64     `json:"miss_rate"`
	Gain     float64     `json:"gain"`
	Mask     isa.RegMask `json:"mask"`
	// RunLen > 1 marks the leader of a coalesced group covering RunLen
	// candidate loads with a single yield.
	RunLen int `json:"run_len"`
	// Leader is the OldPC of the group leader if this site's prefetch was
	// hoisted into a coalesced group (equals OldPC for leaders).
	Leader int `json:"leader"`
}

// PrimaryResult reports what primary instrumentation did.
type PrimaryResult struct {
	Sites      []PrimarySite `json:"sites"`
	OldToNew   []int         `json:"old_to_new"`
	PolicyName string        `json:"policy"`
	Yields     int           `json:"yields"`
	Prefetches int           `json:"prefetches"`
	Candidates int           `json:"candidates"` // profiled loads considered
}

// BuildSites derives policy inputs from a profile for every candidate in
// the program: loads and accelerator waits. Candidates without profile
// samples are omitted (no evidence of stalls, so the pipeline leaves them
// alone).
func BuildSites(prog *isa.Program, prof *profile.Profile, opts Options) []Site {
	var sites []Site
	for pc, in := range prog.Instrs {
		switch in.Op {
		case isa.OpLoad, isa.OpStore:
			ls := prof.Site(pc)
			if ls == nil || ls.Execs <= 0 {
				continue
			}
			sites = append(sites, Site{
				PC:              pc,
				MissRate:        ls.MissRate(),
				DRAMFraction:    ls.DRAMFraction(),
				Execs:           ls.Execs,
				StallCycles:     ls.StallCycles,
				ExpectedMissLat: blendedMissLatency(ls.DRAMFraction(), opts.Machine),
				SwitchCost:      2 * float64(opts.Switch.FullCost()),
				Absorb:          float64(opts.CPU.PipelineAbsorb),
			})
		case isa.OpAccWait:
			ls := prof.Site(pc)
			if ls == nil || ls.Execs <= 0 {
				continue
			}
			// An accelerator wait is the event with probability 1; its
			// expected duration is the profiled stall per execution.
			sites = append(sites, Site{
				PC:              pc,
				MissRate:        1,
				Execs:           ls.Execs,
				StallCycles:     ls.StallCycles,
				ExpectedMissLat: ls.StallCycles/ls.Execs + float64(opts.CPU.PipelineAbsorb),
				SwitchCost:      2 * float64(opts.Switch.FullCost()),
				Absorb:          float64(opts.CPU.PipelineAbsorb),
			})
		}
	}
	return sites
}

// Primary rewrites prog with prefetch+yield pairs at the loads the policy
// selects. It returns the rewritten program and a report.
func Primary(prog *isa.Program, prof *profile.Profile, opts Options) (*isa.Program, *PrimaryResult, error) {
	if opts.Policy == nil {
		return nil, nil, fmt.Errorf("instrument: nil policy")
	}
	g, err := bincfg.Build(prog)
	if err != nil {
		return nil, nil, err
	}
	live := bincfg.ComputeLiveness(g)

	sites := BuildSites(prog, prof, opts)
	siteAt := make(map[int]Site, len(sites))
	for _, s := range sites {
		siteAt[s.PC] = s
	}

	res := &PrimaryResult{PolicyName: opts.Policy.Name(), Candidates: len(sites)}
	rw := NewRewriter(prog)

	maskAt := func(pc int) isa.RegMask {
		if opts.LiveMasks {
			return live.LiveIn(pc)
		}
		return isa.AllRegs
	}

	covered := make(map[int]bool)
	for pc, in := range prog.Instrs {
		if covered[pc] {
			continue
		}
		s, profiled := siteAt[pc]
		if !profiled || !opts.Policy.Decide(s) {
			continue
		}
		// Stores get an individual prefetch-for-write (RFO) plus yield;
		// write misses stall write-allocate caches just like read misses.
		if in.Op == isa.OpStore {
			mask := maskAt(pc)
			rw.InsertBefore(pc,
				isa.Instr{Op: isa.OpPrefetch, Rs1: in.Rs1, Imm: in.Imm},
				isa.Instr{Op: isa.OpYield, Imm: int64(mask)},
			)
			res.Prefetches++
			res.Yields++
			res.Sites = append(res.Sites, PrimarySite{
				OldPC:    pc,
				MissRate: s.MissRate,
				Gain:     s.Gain(),
				Mask:     mask,
				Leader:   pc,
				RunLen:   1,
			})
			covered[pc] = true
			continue
		}
		// Accelerator waits get a bare yield: the asynchronous submission
		// already happened at the matching ACCEL, so there is nothing to
		// prefetch — the yield alone exposes the wait for hiding.
		if in.Op == isa.OpAccWait {
			mask := maskAt(pc)
			rw.InsertBefore(pc, isa.Instr{Op: isa.OpYield, Imm: int64(mask)})
			res.Yields++
			res.Sites = append(res.Sites, PrimarySite{
				OldPC:    pc,
				MissRate: s.MissRate,
				Gain:     s.Gain(),
				Mask:     mask,
				Leader:   pc,
				RunLen:   1,
			})
			covered[pc] = true
			continue
		}
		if in.Op != isa.OpLoad {
			continue
		}
		run := 1
		if opts.Coalesce {
			run = bincfg.IndependentLoadRun(g, pc)
		}
		// Collect the selected loads inside the run; the leader is pc.
		var group []Site
		for j := pc; j < pc+run; j++ {
			gs, ok := siteAt[j]
			if !ok || !opts.Policy.Decide(gs) {
				continue
			}
			group = append(group, gs)
		}
		mask := maskAt(pc)
		var inserted []isa.Instr
		for _, gs := range group {
			ld := prog.Instrs[gs.PC]
			inserted = append(inserted, isa.Instr{Op: isa.OpPrefetch, Rs1: ld.Rs1, Imm: ld.Imm})
		}
		inserted = append(inserted, isa.Instr{Op: isa.OpYield, Imm: int64(mask)})
		rw.InsertBefore(pc, inserted...)
		res.Prefetches += len(group)
		res.Yields++

		for gi, gs := range group {
			site := PrimarySite{
				OldPC:    gs.PC,
				MissRate: gs.MissRate,
				Gain:     gs.Gain(),
				Mask:     mask,
				Leader:   pc,
			}
			if gi == 0 {
				site.RunLen = len(group)
			}
			res.Sites = append(res.Sites, site)
			covered[gs.PC] = true
		}
		// Loads inside the run that were not selected remain uncovered
		// and uninstrumented; loads after the run get their own pass.
		for j := pc; j < pc+run; j++ {
			covered[j] = true
		}
	}

	out, oldToNew, err := rw.Apply()
	if err != nil {
		return nil, nil, err
	}
	res.OldToNew = oldToNew
	for i := range res.Sites {
		res.Sites[i].NewPC = oldToNew[res.Sites[i].OldPC]
		// The yield sits immediately before the leader's new position.
		res.Sites[i].YieldPC = oldToNew[res.Sites[i].Leader] - 1
	}
	return out, res, nil
}

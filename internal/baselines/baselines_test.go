package baselines

import (
	"testing"

	"repro/internal/coro"
	"repro/internal/isa"
)

func TestOSThreadCostModel(t *testing.T) {
	m := OSThreadCostModel()
	lightweight := coro.DefaultCostModel()
	if m.FullCost() < 100*lightweight.FullCost() {
		t.Errorf("OS-thread switch (%d) should be orders of magnitude above coroutine switch (%d)",
			m.FullCost(), lightweight.FullCost())
	}
}

func TestAnnotateLoads(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r2, 64
    loop:
        load r1, [r2]        ; 1
        load r3, [r2+8]      ; 2
        addi r2, r2, 16
        cmpi r2, 256
        jlt loop
        halt
    `)
	out, oldToNew, err := AnnotateLoads(prog, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Instrs) != len(prog.Instrs)+2 {
		t.Fatalf("expected 2 insertions, got %d instructions", len(out.Instrs))
	}
	ld := oldToNew[1]
	if out.Instrs[ld].Op != isa.OpLoad ||
		out.Instrs[ld-1].Op != isa.OpYield ||
		out.Instrs[ld-2].Op != isa.OpPrefetch {
		t.Error("annotation layout wrong")
	}
	if out.Instrs[ld-1].LiveMask() != isa.AllRegs {
		t.Error("manual annotation must use full register saves")
	}
	// The loop branch re-enters at the prefetch.
	for _, in := range out.Instrs {
		if in.Op == isa.OpJlt && in.Target() != oldToNew[1]-2 {
			t.Errorf("branch target %d, want %d", in.Target(), oldToNew[1]-2)
		}
	}
}

func TestAnnotateAllLoads(t *testing.T) {
	prog := isa.MustAssemble(`
        movi r2, 64
        load r1, [r2]
        load r3, [r2+8]
        halt
    `)
	out, _, err := AnnotateAllLoads(prog)
	if err != nil {
		t.Fatal(err)
	}
	var yields int
	for _, in := range out.Instrs {
		if in.Op == isa.OpYield {
			yields++
		}
	}
	if yields != 2 {
		t.Errorf("yields = %d, want 2", yields)
	}
}

func TestAnnotateRejectsBadPCs(t *testing.T) {
	prog := isa.MustAssemble("movi r1, 1\nhalt")
	if _, _, err := AnnotateLoads(prog, []int{0}); err == nil {
		t.Error("annotating a non-load should fail")
	}
	if _, _, err := AnnotateLoads(prog, []int{99}); err == nil {
		t.Error("annotating out of range should fail")
	}
}

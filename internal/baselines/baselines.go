// Package baselines implements the comparison points the paper argues
// against:
//
//   - No interleaving: run the original binary and eat every stall.
//   - OS-thread switching: software interleaving priced at process/kernel
//     thread context-switch cost (hundreds of ns to µs [14, 38]) — shows
//     why traditional threads cannot hide 10–100 ns events.
//   - Manual annotation (CoroBase-style [23, 28, 53]): a developer marks
//     the loads they *believe* miss and the toolchain inserts
//     prefetch+yield there, with full register saves (hand-written code
//     gets no liveness optimization) and no scavenger phase (hand-placed
//     yields are too sparse for latency control — the §2 critique).
package baselines

import (
	"fmt"

	"repro/internal/coro"
	"repro/internal/instrument"
	"repro/internal/isa"
)

// OSThreadSwitchCycles is the modelled kernel-thread context switch cost:
// 4500 cycles = 1.5 µs at 3 GHz, mid-range of the paper's citations.
const OSThreadSwitchCycles = 4500

// OSThreadCostModel prices switches at kernel-thread cost. The register
// component is irrelevant at this magnitude.
func OSThreadCostModel() coro.CostModel {
	return coro.CostModel{Base: OSThreadSwitchCycles, PerReg: 0}
}

// AnnotateLoads inserts a PREFETCH+YIELD pair before each of the given
// load instructions, mimicking a developer hand-annotating their code.
// Yields save the full register file and no scavenger yields are placed.
func AnnotateLoads(prog *isa.Program, loadPCs []int) (*isa.Program, []int, error) {
	rw := instrument.NewRewriter(prog)
	for _, pc := range loadPCs {
		if pc < 0 || pc >= len(prog.Instrs) {
			return nil, nil, fmt.Errorf("baselines: annotation PC %d out of range", pc)
		}
		in := prog.Instrs[pc]
		if in.Op != isa.OpLoad {
			return nil, nil, fmt.Errorf("baselines: annotation PC %d is %v, not a load", pc, in)
		}
		rw.InsertBefore(pc,
			isa.Instr{Op: isa.OpPrefetch, Rs1: in.Rs1, Imm: in.Imm},
			isa.Instr{Op: isa.OpYield, Imm: int64(isa.AllRegs)},
		)
	}
	return rw.Apply()
}

// AnnotateAllLoads marks every load in the program — the exhaustive
// hand-annotation strategy (also the upper bound on annotation effort).
func AnnotateAllLoads(prog *isa.Program) (*isa.Program, []int, error) {
	var pcs []int
	for i, in := range prog.Instrs {
		if in.Op == isa.OpLoad {
			pcs = append(pcs, i)
		}
	}
	return AnnotateLoads(prog, pcs)
}

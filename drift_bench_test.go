package repro

import "testing"

// hostDriftSink keeps the reference kernel's result live across
// iterations so the compiler cannot delete the loop.
var hostDriftSink uint64

// BenchmarkHostDriftReference is the frozen host-speed probe behind the
// drift-aware rate gate in scripts/bench.sh. It runs a fixed xorshift
// mixing kernel that touches no simulator code at all, so its ns/op is a
// pure function of the host — any change between a trajectory recording
// and a later gate run is machine drift (different container, CPU
// generation, frequency scaling), never a product regression. The gate
// divides the measured ns/op by the recorded one and scales the
// step-rate tolerance band by that ratio.
//
// FROZEN: do not change this kernel. Editing it invalidates the
// recorded reference in every BENCH_PR*.json and turns the drift
// correction into noise.
func BenchmarkHostDriftReference(b *testing.B) {
	x := uint64(0x9E3779B97F4A7C15)
	var acc uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1024; j++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			acc += x
		}
	}
	hostDriftSink = acc
}

// Package repro is softhide: a complete implementation and evaluation of
// "Out of Hand for Hardware? Within Reach for Software!" (Luo, Fu, Amaro,
// Ousterhout, Ratnasamy, Shenker — HotOS 2023), which proposes hiding
// 10–100 ns CPU-stall events (L2/L3 cache misses) in software by combining
// light-weight coroutines with sample-based profiling.
//
// The system is built on a deterministic cycle-level machine simulator
// (virtual ISA, three-level cache hierarchy with in-flight fill tracking,
// in-order core with PEBS/LBR-style sampling hooks), because the paper's
// mechanism needs hardware facilities — performance counters, binary
// rewriting, nanosecond-scale context switches — that a pure-Go process
// cannot touch directly. Every quantity the paper reasons about (switch
// cost, miss latency, stall cycles, sampling noise) is a first-class
// simulated quantity.
//
// The pipeline follows the paper's three steps:
//
//	h, _ := repro.NewHarness(repro.DefaultMachine(),
//	    repro.PointerChase{Nodes: 8192, Hops: 3000, Instances: 8})
//	prof, _, _ := h.Profile("chase")                          // §3.2 step (i)
//	img, _ := h.Instrument(prof, repro.DefaultPipelineOptions()) // step (ii)
//	ts, _ := h.Tasks(img, "chase", repro.Primary, 8)
//	stats, _ := h.NewExecutor(img, repro.ExecConfig{}).RunSymmetric(ts.Tasks) // step (iii)
//
// Dual-mode asymmetric concurrency (§3.3) runs one latency-sensitive
// primary against scavenger coroutines:
//
//	st, _ := h.NewExecutor(img, repro.ExecConfig{}).RunDualMode(primary, scavengers)
//
// The package-level bench harness (go test -bench .) and cmd/shbench
// regenerate every table and figure of the evaluation; see DESIGN.md and
// EXPERIMENTS.md.
package repro

// Package repro is softhide: a complete implementation and evaluation of
// "Out of Hand for Hardware? Within Reach for Software!" (Luo, Fu, Amaro,
// Ousterhout, Ratnasamy, Shenker — HotOS 2023), which proposes hiding
// 10–100 ns CPU-stall events (L2/L3 cache misses) in software by combining
// light-weight coroutines with sample-based profiling.
//
// The system is built on a deterministic cycle-level machine simulator
// (virtual ISA, three-level cache hierarchy with in-flight fill tracking,
// in-order core with PEBS/LBR-style sampling hooks), because the paper's
// mechanism needs hardware facilities — performance counters, binary
// rewriting, nanosecond-scale context switches — that a pure-Go process
// cannot touch directly. Every quantity the paper reasons about (switch
// cost, miss latency, stall cycles, sampling noise) is a first-class
// simulated quantity.
//
// The entry point is a Session, which owns the machine description and
// execution policy (parallelism, result cache, tracing). The pipeline
// follows the paper's three steps:
//
//	s, _ := repro.NewSession()
//	h, img, _ := s.Pipeline("chase", repro.DefaultPipelineOptions(), // steps (i)+(ii)
//	    repro.PointerChase{Nodes: 8192, Hops: 3000, Instances: 8})
//	ts, _ := h.Tasks(img, "chase", repro.Primary, 8)
//	stats, _ := s.NewExecutor(h, img, repro.ExecConfig{}).RunSymmetric(ts.Tasks) // step (iii)
//
// Dual-mode asymmetric concurrency (§3.3) runs one latency-sensitive
// primary against scavenger coroutines:
//
//	st, _ := s.NewExecutor(h, img, repro.ExecConfig{}).RunDualMode(primary, scavengers)
//
// Experiment sweeps fan out over a deterministic parallel runner
// (results return in presentation order at any parallelism, cached
// cells are served without simulating):
//
//	s, _ = repro.NewSession(repro.WithParallelism(8), repro.WithCache(""))
//	results, _ := s.RunAll(context.Background()) // all of F1, E1–E21
//
// Static verification guards against silent miscompiles in the binary
// rewriter. WithVerification makes the session self-checking: every
// image Pipeline produces is verified by the internal/check analyses
// (yield save-mask liveness, branch-target closure, call/ret
// discipline, insertion reachability), and RunAll/Sweep gate on a
// one-time toolchain preflight. The same checks run standalone over
// image files via cmd/shcheck:
//
//	s, _ = repro.NewSession(repro.WithVerification())
//	_, img, err := s.Pipeline("chase", repro.DefaultPipelineOptions(), spec)
//	// err is a *repro.CheckError listing every diagnostic if the
//	// rewritten binary is unsound; Session.VerifyImage re-checks any
//	// instrumented image on demand.
//
// Observability — tracing, the cycle-domain metrics registry and Chrome
// trace export — is configured in one option and threaded into every
// executor the session builds:
//
//	ring := repro.NewTraceRing(4096)
//	reg := &repro.MetricsRegistry{}
//	s, _ = repro.NewSession(repro.WithObservability(repro.ObservabilityConfig{
//	    Tracer: ring, Metrics: reg,
//	}))
//	// ... run work ...
//	snap := s.MetricsSnapshot()            // counters + histograms
//	_ = s.ExportTrace(f, repro.ChromeTraceOptions{}) // Perfetto-loadable JSON
//
// Execution speed comes from a three-tier retire engine: per-instruction
// stepping, a basic-block fast path, and a superblock trace tier that
// chains hot blocks across predicted-taken branches (profile-guided when
// an LBR edge profile exists, static heuristics otherwise). Superblocks
// are on by default and bit-identical to stepping; WithSuperblocks(false)
// opts a session out for A/B measurement. Attaching an observer (tracing,
// PEBS sampling) bypasses both fast tiers automatically — profiled runs
// always see the full per-instruction event stream:
//
//	s, _ = repro.NewSession(repro.WithSuperblocks(false)) // force the block/step tiers
//
// Many-core simulation is cut around Topology: each simulated core owns
// a private L1/L2 and runs on its own goroutine; all cores share a
// banked LLC + DRAM with bandwidth/MSHR contention; a cycle-quantum
// kernel keeps the whole machine deterministic (results are
// byte-identical across GOMAXPROCS settings and repeated runs):
//
//	s, _ = repro.NewSession(repro.WithTopology(repro.DefaultTopology(8)))
//	st, _ := s.RunMachine(repro.MachineRun{
//	    Spec: repro.PointerChase{Nodes: 8192, Hops: 3000, Instances: 4},
//	    Mode: repro.MachineSymmetric,
//	})
//	// st.Cores[i] per-core, st.Aggregate + st.LLC machine-wide
//
// Open-loop service simulation — the datacenter question the paper
// opens with — is cut around Session.Serve: requests arrive on their
// own clock (Poisson, uniform or bursty, in requests per simulated µs),
// pass a bounded admission queue with drop/shed accounting, and are
// served under a policy × offered-load grid whose per-cell sojourn
// distributions (p50/p99/p999) render as throughput-vs-tail-latency
// tables. Serve is the canonical way to measure tail latency; the
// closed-loop Harness.Tasks + RunSymmetric/RunDualMode surface above is
// the low-level building block it schedules on:
//
//	rep, _ := s.Serve(ctx, repro.ServiceConfig{
//	    Arrivals: repro.ArrivalSpec{Kind: repro.ArrivalPoisson},
//	    Rates:    []float64{0.05, 0.1, 0.2}, // offered load sweep
//	    Policies: []repro.ServicePolicy{repro.PolicyAgnostic, repro.PolicyEventAware},
//	})
//	fmt.Print(rep) // per-policy tables + cross-policy p99 comparison
//
// (repro.LoadSweep(ctx, cfg, opts...) is the one-call form.) Cells fan
// out over the session's worker pool and result cache exactly like
// experiment sweeps, and reports are byte-identical at any GOMAXPROCS.
//
// The package-level bench harness (go test -bench .) and cmd/shbench
// regenerate every table and figure of the evaluation; see DESIGN.md and
// EXPERIMENTS.md. The flat pre-Session surface (NewHarness, ...) and the
// single-core Machine surface remain as deprecated compatibility
// layers; the free functions Session subsumed are gone. Migration:
//
//	DefaultMachine()        → DefaultTopology(1).Machine (removed)
//	Experiments()           → Session.ExperimentIDs() + Session.RunAll(ctx) (removed)
//	LookupExperiment(id)    → Session.Run(ctx, id) (removed)
//	ExperimentIDs()         → Session.ExperimentIDs() (removed)
//	WithMachine(m)          → WithTopology(Topology{Cores: 1, Machine: m})
//	Session.Machine()       → Session.Topology().Machine
//	NewHarness(specs...)    → Session.NewHarness(specs...)
//	WithTracer(t)           → WithObservability(ObservabilityConfig{Tracer: t})
package repro

// Latency-sensitive service example: open-loop tail latency at offered
// load (§3.3 applied at datacenter scale).
//
// A service core handles a stream of latency-critical requests
// (hash-table probes) that arrive on their own Poisson clock — the
// server cannot slow them down — while batch compute wants the leftover
// cycles. Session.Serve sweeps the serving discipline × offered-load
// grid and reports the sojourn-time distribution of every cell:
//
//   - agnostic: requests and batch work share one blind round-robin —
//     requests queue behind whole batch slices and the tail explodes.
//   - os-thread: the same discipline with kernel-priced context
//     switches — worse still.
//   - sidecar: one dedicated request lane; batch work is borrowed only
//     inside the request's miss shadows.
//   - event-aware: pending requests are co-scheduled into the oldest
//     request's miss shadows ahead of batch work — the paper's
//     asymmetric-concurrency result, now visible as a flat p99 curve.
//
// Every cell is deterministic: rerunning this program (at any
// GOMAXPROCS) reproduces the tables byte for byte.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	s, err := repro.NewSession(repro.WithParallelism(0)) // fan cells out over GOMAXPROCS
	if err != nil {
		log.Fatal(err)
	}

	cfg := repro.ServiceConfig{
		Workload: repro.Workload{
			// One request = one batch of hash-table probes; four may be
			// in flight at once (one per worker slot).
			Request: repro.HashJoin{BuildRows: 4096, Buckets: 2048, Probes: 24,
				MatchFraction: 0.7, Instances: 4},
			// Batch analytics soak up miss shadows and idle cycles.
			Background: repro.Compute{Iters: 3000, Instances: 2},
		},
		Arrivals: repro.ArrivalSpec{Kind: repro.ArrivalPoisson},
		Rates:    []float64{0.02, 0.05, 0.1}, // requests per simulated µs
		Requests: 400,
		Workers:  4,
		Queue:    64,
		Batch:    2,
		Policies: []repro.ServicePolicy{
			repro.PolicyAgnostic,
			repro.PolicyOSThread,
			repro.PolicySidecar,
			repro.PolicyEventAware,
		},
	}

	rep, err := s.Serve(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	// The headline: what the 99th-percentile request pays under each
	// discipline at the highest offered load.
	rate := cfg.Rates[len(cfg.Rates)-1]
	fmt.Printf("at %g req/µs:\n", rate)
	for _, pol := range cfg.Policies {
		cell := rep.Cell(pol, rate)
		fmt.Printf("  %-12s p99 %9.3f µs  (%d/%d completed, %d dropped, %d shed)\n",
			cell.Policy, cell.P99Micros(), cell.Completed, cell.Requests, cell.Dropped, cell.Shed)
	}
	fmt.Println("\nevent-aware keeps the tail flat by serving pending requests inside")
	fmt.Println("the oldest request's miss shadows, ahead of any batch work (§3.3)")
}

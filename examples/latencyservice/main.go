// Latency-sensitive service example: asymmetric concurrency (§3.3).
//
// A service core handles one latency-critical request stream (hash-table
// probes) while batch analytics (pointer-chase scans) want the leftover
// cycles. Three disciplines:
//
//   - dedicated: the request runs alone — best latency, terrible CPU
//     efficiency (the core idles in every miss).
//   - symmetric: request and batch work are equal coroutines — great
//     efficiency, but the request queues behind batch slices and its
//     latency explodes.
//   - dual-mode: the request is the primary, batch work runs as
//     scavengers strictly inside its miss shadows — near-dedicated
//     latency at near-symmetric efficiency. This is the paper's core
//     asymmetric-concurrency result.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	s, err := repro.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	h, err := s.NewHarness(
		repro.HashJoin{BuildRows: 8192, Buckets: 4096, Probes: 250, MatchFraction: 0.7, Instances: 1},
		repro.Compute{Iters: 120000, Instances: 4},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Profile and instrument once; the same binary serves all disciplines.
	prof, _, err := h.Profile("hashjoin")
	if err != nil {
		log.Fatal(err)
	}
	img, err := h.Instrument(prof, repro.DefaultPipelineOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("latency-critical hash-join request + 4 batch-compute coroutines")
	fmt.Printf("%-12s %16s %14s %12s\n", "discipline", "request cycles", "vs dedicated", "efficiency")

	// Dedicated core.
	ts, err := h.Tasks(h.Baseline(), "hashjoin", repro.Primary, 1)
	must(err)
	ded, err := h.NewExecutor(h.Baseline(), repro.ExecConfig{}).RunSolo(ts.Tasks[0])
	must(err)
	must(ts.Validate())
	row("dedicated", ded.Cycles, ded.Cycles, ded.Efficiency())

	// Symmetric sharing.
	pts, err := h.Tasks(img, "hashjoin", repro.Primary, 1)
	must(err)
	bts, err := h.Tasks(img, "compute", repro.Primary, 4)
	must(err)
	pts.Merge(bts)
	sym, err := h.NewExecutor(img, repro.ExecConfig{}).RunSymmetric(pts.Tasks)
	must(err)
	must(pts.Validate())
	row("symmetric", sym.Latencies[0], ded.Cycles, sym.Efficiency())

	// Dual-mode asymmetric concurrency.
	pts, err = h.Tasks(img, "hashjoin", repro.Primary, 1)
	must(err)
	sts, err := h.Tasks(img, "compute", repro.Scavenger, 4)
	must(err)
	dual, err := h.NewExecutor(img, repro.ExecConfig{}).RunDualMode(pts.Tasks[0], sts.Tasks)
	must(err)
	must(pts.Validate())
	row("dual-mode", dual.PrimaryLatency, ded.Cycles, dual.Efficiency())

	fmt.Printf("\ndual-mode details: %d miss episodes hidden, avg overshoot %.1f cycles\n",
		dual.Episodes, float64(dual.PrimaryDelay)/max(1, float64(dual.Episodes)))
	fmt.Println("the primary got its misses hidden by scavengers that never held the CPU")
	fmt.Println("longer than the scavenger-phase yield interval allows (§3.3)")
}

func row(name string, latency, base uint64, eff float64) {
	fmt.Printf("%-12s %16d %13.2fx %11.1f%%\n",
		name, latency, float64(latency)/float64(base), eff*100)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Many-core example: the whole machine in one deterministic run.
//
// Each simulated core owns a private L1/L2 and advances on its own
// goroutine; all cores share a banked LLC + DRAM with bandwidth/MSHR
// contention. The cycle-quantum kernel barriers the cores every few
// thousand cycles and commits shared-LLC traffic in core-index order,
// so every number printed here is byte-identical across runs and
// GOMAXPROCS settings — parallel simulation without losing the
// reproducibility the single-core engine guarantees.
//
// The sweep below scales a memory-bound pointer chase from 1 to 8
// cores. Aggregate throughput grows with the core count while the
// shared-LLC counters show the contention the private-hierarchy model
// cannot: queued bank accesses and DRAM-side MSHR pressure.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("many-core scaling: pointer chase on 1..8 cores over a shared LLC")
	fmt.Printf("\n%6s %14s %14s %12s %12s %12s\n",
		"cores", "cycles", "retired", "retired/cyc", "llc misses", "llc queued")

	for _, cores := range []int{1, 2, 4, 8} {
		topo := repro.DefaultTopology(cores)
		topo.Machine.MemBytes = 32 << 20 // per-core memory; example-sized
		s, err := repro.NewSession(repro.WithTopology(topo))
		if err != nil {
			log.Fatal(err)
		}
		st, err := s.RunMachine(repro.MachineRun{
			Spec: repro.PointerChase{Nodes: 4096, Hops: 2000, Instances: 4},
			Mode: repro.MachineSymmetric,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %14d %14d %12.4f %12d %12d\n",
			cores, st.Cycles, st.Aggregate.Retired,
			float64(st.Aggregate.Retired)/float64(st.Cycles),
			st.LLC.Misses, st.LLC.Queued)
	}

	fmt.Println("\nper-core seeds are strided, so cores chase decorrelated chains; the")
	fmt.Println("1-core row is the classic single-core engine bit-for-bit")
}

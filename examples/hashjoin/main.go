// Hash-join example: the database workload that motivated coroutine
// interleaving (CoroBase, Psaropoulos et al. — the paper's §2).
//
// Three builds of the same probe kernel run 8-way interleaved:
//
//   - baseline: the original binary; every bucket/chain load stalls.
//   - manual: a "developer" annotates every load by hand with
//     prefetch+yield — CoroBase-style, full register saves, and effort
//     that has to be repeated for every data structure.
//   - profile-guided: softhide's pipeline decides from PEBS samples where
//     to yield, computes live-register masks, and coalesces — no source
//     knowledge at all.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/baselines"
	"repro/internal/isa"
)

const nWay = 8

func main() {
	s, err := repro.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	h, err := s.NewHarness(repro.HashJoin{
		BuildRows: 8192, Buckets: 4096, Probes: 400, MatchFraction: 0.7, Instances: nWay,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hash-join probe: 8192-row build side, 400 probes × 8 coroutines")
	fmt.Printf("%-18s %14s %12s %10s %8s\n", "variant", "cycles", "efficiency", "speedup", "yields")

	baseCycles := measure(h, h.Baseline(), "baseline", 0)

	// Manual annotation: every load, full saves, no scavenger yields.
	manualProg, oldToNew, err := baselines.AnnotateAllLoads(h.Sc.Prog)
	if err != nil {
		log.Fatal(err)
	}
	my := countYields(manualProg)
	measureWithBase(h, h.FromRewrite(manualProg, oldToNew), "manual (CoroBase)", my, baseCycles)

	// Profile-guided.
	prof, _, err := h.Profile("hashjoin")
	if err != nil {
		log.Fatal(err)
	}
	img, err := h.Instrument(prof, repro.DefaultPipelineOptions())
	if err != nil {
		log.Fatal(err)
	}
	measureWithBase(h, img, "profile-guided", img.Pipe.Primary.Yields, baseCycles)

	fmt.Println("\nper-site decisions made by the pipeline (no source access):")
	for _, s := range img.Pipe.Primary.Sites {
		fmt.Printf("  load pc=%-4d est. miss rate %.2f  modelled gain %+6.1f cyc  live mask %v\n",
			s.OldPC, s.MissRate, s.Gain, s.Mask)
	}
}

func measure(h *repro.Harness, img *repro.Image, name string, yields int) uint64 {
	return measureWithBase(h, img, name, yields, 0)
}

func measureWithBase(h *repro.Harness, img *repro.Image, name string, yields int, base uint64) uint64 {
	ts, err := h.Tasks(img, "hashjoin", repro.Primary, nWay)
	if err != nil {
		log.Fatal(err)
	}
	st, err := h.NewExecutor(img, repro.ExecConfig{}).RunSymmetric(ts.Tasks)
	if err != nil {
		log.Fatal(err)
	}
	if err := ts.Validate(); err != nil {
		log.Fatalf("%s produced wrong join results: %v", name, err)
	}
	speedup := "1.00x"
	if base > 0 {
		speedup = fmt.Sprintf("%.2fx", float64(base)/float64(st.Cycles))
	}
	fmt.Printf("%-18s %14d %11.1f%% %10s %8d\n", name, st.Cycles, st.Efficiency()*100, speedup, yields)
	return st.Cycles
}

func countYields(p *repro.Program) int {
	n := 0
	for _, in := range p.Instrs {
		if in.Op == isa.OpYield {
			n++
		}
	}
	return n
}

// Quickstart: the complete softhide pipeline on a pointer chase, in ~40
// lines of library calls — profile in "production", instrument the binary,
// interleave coroutines, and watch the memory stalls disappear. Built on
// the Session API: the session owns the machine and execution policy,
// Pipeline runs the paper's profile→instrument steps in one call.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	s, err := repro.NewSession() // reference machine, sequential
	if err != nil {
		log.Fatal(err)
	}

	// A DRAM-resident pointer chase: 8192 nodes × 64 B is 512 KiB against
	// a 256 KiB simulated LLC, and every hop depends on the previous one.
	const n = 8
	spec := repro.PointerChase{Nodes: 8192, Hops: 2000, Instances: n}

	// Baseline: run the original binary, one coroutine, and eat every miss.
	h, err := s.NewHarness(spec)
	if err != nil {
		log.Fatal(err)
	}
	base := h.Baseline()
	ts, err := h.Tasks(base, "chase", repro.Primary, n)
	if err != nil {
		log.Fatal(err)
	}
	before, err := s.NewExecutor(h, base, repro.ExecConfig{}).RunSymmetric(ts.Tasks)
	if err != nil {
		log.Fatal(err)
	}
	must(ts.Validate())

	// Steps (i)+(ii): sample-based profiling, then profile-guided binary
	// rewriting — prefetch+yield before the loads the profile says miss.
	h, img, err := s.Pipeline("chase", repro.DefaultPipelineOptions(), spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrumentation: %d yields, %d prefetches inserted (policy %s)\n",
		img.Pipe.Primary.Yields, img.Pipe.Primary.Prefetches, img.Pipe.Primary.PolicyName)

	// Step (iii): interleave 8 coroutines; each one's miss shadows run the
	// others' compute.
	ts, err = h.Tasks(img, "chase", repro.Primary, n)
	if err != nil {
		log.Fatal(err)
	}
	after, err := s.NewExecutor(h, img, repro.ExecConfig{}).RunSymmetric(ts.Tasks)
	if err != nil {
		log.Fatal(err)
	}
	must(ts.Validate())

	fmt.Printf("\n%-22s %14s %12s %10s\n", "", "cycles", "efficiency", "stalled")
	fmt.Printf("%-22s %14d %11.1f%% %9.1f%%\n", "baseline", before.Cycles,
		before.Efficiency()*100, before.StallFraction()*100)
	fmt.Printf("%-22s %14d %11.1f%% %9.1f%%\n", "profile-guided", after.Cycles,
		after.Efficiency()*100, after.StallFraction()*100)
	fmt.Printf("\nspeedup: %.2fx — same results, zero source changes\n",
		float64(before.Cycles)/float64(after.Cycles))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

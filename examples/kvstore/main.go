// KV-store example: a single-core in-memory key-value node under mixed
// traffic, scheduled three ways (§4.2).
//
// The node serves a stream of point-lookup requests against a skip-list
// index (the latency-critical path) while background analytics scans want
// every spare cycle. The same instrumented binary runs under the three
// scheduler-integration policies from the paper's §4.2 discussion:
//
//   - agnostic: the scheduler has no idea short events exist; requests
//     round-robin with analytics at every yield.
//   - sidecar: requests run FIFO; the event-hiding executor borrows the
//     scheduler's ready analytics tasks during each request's miss
//     shadows.
//   - event-aware: the scheduler also co-schedules *pending requests*
//     into the running request's shadows before touching analytics.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/sched"
)

const (
	nRequests  = 8
	nAnalytics = 3
)

func main() {
	s, err := repro.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	h, err := s.NewHarness(
		repro.SkipList{Keys: 8192, Lookups: 60, Instances: nRequests},
		repro.ArrayScan{N: 32768, Instances: nAnalytics},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Profile both code paths in one "production" run and build the
	// instrumented node binary.
	prof, _, err := h.Profile("skiplist")
	if err != nil {
		log.Fatal(err)
	}
	scanProf, _, err := h.Profile("scan")
	if err != nil {
		log.Fatal(err)
	}
	if err := prof.Merge(scanProf); err != nil {
		log.Fatal(err)
	}
	img, err := h.Instrument(prof, repro.DefaultPipelineOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kv node binary: %d -> %d instructions, %d request-path yields\n\n",
		len(h.Sc.Prog.Instrs), len(img.Prog.Instrs), img.Pipe.Primary.Yields)

	fmt.Printf("%d skip-list lookup requests (60 keys each) + %d analytics scans\n\n",
		nRequests, nAnalytics)
	fmt.Printf("%-12s %14s %14s %14s %12s\n",
		"policy", "mean_latency", "p95_latency", "drain_cycles", "efficiency")

	for _, policy := range []sched.Policy{sched.Agnostic, sched.Sidecar, sched.EventAware} {
		reqs, err := h.Tasks(img, "skiplist", repro.Primary, nRequests)
		if err != nil {
			log.Fatal(err)
		}
		batch, err := h.Tasks(img, "scan", repro.Scavenger, nAnalytics)
		if err != nil {
			log.Fatal(err)
		}
		s := sched.New(h.NewExecutor(img, repro.ExecConfig{}), policy)
		for _, t := range reqs.Tasks {
			s.Submit(t, sched.Request)
		}
		for _, t := range batch.Tasks {
			s.Submit(t, sched.Batch)
		}
		st, err := s.Run()
		if err != nil {
			log.Fatal(err)
		}
		if err := reqs.Validate(); err != nil {
			log.Fatalf("%v served wrong lookup results: %v", policy, err)
		}
		if err := batch.Validate(); err != nil {
			log.Fatalf("%v corrupted analytics: %v", policy, err)
		}
		lats := make([]float64, len(st.RequestLatencies))
		for i, l := range st.RequestLatencies {
			lats[i] = float64(l)
		}
		sort.Float64s(lats)
		p95 := lats[len(lats)*95/100-1]
		fmt.Printf("%-12s %14.0f %14.0f %14d %11.1f%%\n",
			policy, st.MeanRequestLatency(), p95, st.Cycles, st.Efficiency()*100)
	}

	fmt.Println("\nall three policies served byte-identical results; only the scheduling")
	fmt.Println("of miss shadows differs — the paper's §4.2 integration question")
}

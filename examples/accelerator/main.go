// Accelerator example: hiding onboard-offload waits (§1's second event
// family — think Intel DSA/IAA engines on a server socket).
//
// The kernel submits an asynchronous 64-byte checksum operation per block,
// does a little bookkeeping, and collects the result. The wait is a
// 50–500 ns stall with nothing for the core to do — unless the pipeline
// inserts a yield between submit and collect, in which case other
// coroutines' work fills exactly that shadow. No prefetch is needed: the
// submission is already asynchronous.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("offload-engine stream: checksum one 64B block per item, 8-way interleaved")
	fmt.Printf("\n%-18s %12s %12s %12s %10s\n",
		"engine latency", "baseline", "instrumented", "speedup", "yields")

	ref, err := repro.NewSession()
	if err != nil {
		log.Fatal(err)
	}

	for _, latNS := range []float64{50, 150, 500} {
		topo := ref.Topology()
		topo.Machine.CPU.AccelLatency = uint64(latNS * 3) // 3 GHz: ns -> cycles
		s, err := repro.NewSession(repro.WithTopology(topo))
		if err != nil {
			log.Fatal(err)
		}
		h, err := s.NewHarness(repro.AccelStream{Blocks: 1500, Pad: 8, Instances: 8})
		if err != nil {
			log.Fatal(err)
		}

		run := func(img *repro.Image) repro.ExecStats {
			ts, err := h.Tasks(img, "accelstream", repro.Primary, 8)
			if err != nil {
				log.Fatal(err)
			}
			st, err := h.NewExecutor(img, repro.ExecConfig{}).RunSymmetric(ts.Tasks)
			if err != nil {
				log.Fatal(err)
			}
			if err := ts.Validate(); err != nil {
				log.Fatalf("checksums diverged from the host reference: %v", err)
			}
			return st
		}

		base := run(h.Baseline())
		prof, _, err := h.Profile("accelstream")
		if err != nil {
			log.Fatal(err)
		}
		img, err := h.Instrument(prof, repro.DefaultPipelineOptions())
		if err != nil {
			log.Fatal(err)
		}
		pg := run(img)

		fmt.Printf("%15.0fns %11.1f%% %11.1f%% %11.2fx %10d\n",
			latNS, base.Efficiency()*100, pg.Efficiency()*100,
			float64(base.Cycles)/float64(pg.Cycles), img.Pipe.Primary.Yields)
	}

	fmt.Println("\nthe profiler attributed the stalls to the ACCWAIT site through the same")
	fmt.Println("sampled events as cache misses; one mechanism covers both event families")
}

package repro

// This file is the open-loop service surface: the canonical way to ask
// the paper's datacenter question — what happens to tail latency when
// requests arrive on their own clock and the server cannot push back?
// Session.Serve sweeps a policy × offered-load grid through the
// deterministic runner (parallel, cached, byte-identical at any
// GOMAXPROCS); the closed-loop Harness.Tasks + RunSymmetric/RunDualMode
// surface remains as the low-level building block underneath it.

import (
	"context"
	"fmt"

	"repro/internal/runner"
	"repro/internal/service"
)

type (
	// ServiceConfig describes one Serve call: the request/background
	// workload pair, the arrival process, the offered-load sweep, the
	// admission policy (queue bound, shedding) and the policy grid.
	ServiceConfig = service.Config
	// ServiceReport is a served sweep: per-cell stats plus rendered
	// per-policy and cross-policy tail-latency tables.
	ServiceReport = service.Report
	// ServiceCell identifies one (policy, offered rate) grid point.
	ServiceCell = service.Cell
	// ServiceCellStats is one cell's outcome: drop/shed accounting,
	// throughput and the sojourn-time distribution (p50/p99/p999).
	ServiceCellStats = service.CellStats
	// ServicePolicy selects the serving discipline for a cell.
	ServicePolicy = service.Policy
	// Workload pairs the latency-sensitive request program with the
	// batch work that soaks up miss shadows and idle cycles.
	Workload = service.Workload
	// ArrivalSpec describes the open-loop arrival process (kind, rate
	// in requests per simulated µs, burstiness).
	ArrivalSpec = service.ArrivalSpec
	// ArrivalKind selects the arrival process shape.
	ArrivalKind = service.Kind
)

// Serving policies: the three software integration disciplines (§4.2)
// and the two baselines the paper argues against.
const (
	PolicyAgnostic   = service.Agnostic
	PolicySidecar    = service.Sidecar
	PolicyEventAware = service.EventAware
	PolicyOSThread   = service.OSThread
	PolicySMT        = service.SMT
)

// Arrival process kinds.
const (
	ArrivalPoisson = service.Poisson
	ArrivalUniform = service.Uniform
	ArrivalBursty  = service.Bursty
)

// DefaultServiceConfig returns the reference sweep: memory-bound point
// lookups arriving Poisson at three offered loads, served by the three
// software policies plus the OS-thread baseline.
func DefaultServiceConfig() ServiceConfig { return service.DefaultConfig() }

// ParseServicePolicies parses a comma-separated policy list as printed
// by ServicePolicy.String ("agnostic,event-aware,smt").
var ParseServicePolicies = service.ParsePolicies

// ParseArrivalKind parses an arrival-process name ("poisson",
// "uniform", "bursty").
var ParseArrivalKind = service.ParseKind

// serviceCellKey is the cache-key preimage for one serve cell: the
// normalized configuration plus the cell coordinates, with workload
// specs tagged by concrete type (a bare interface value marshals its
// fields but not its identity, so PointerChase{} and BST{} with equal
// field sets must not collide).
type serviceCellKey struct {
	Cell           ServiceCell
	Arrivals       ArrivalSpec
	Requests       int
	Workers        int
	Queue          int
	ShedAfter      uint64
	Batch          int
	MaxSteps       uint64
	Cores          int
	LLC            LLCConfig
	Quantum        uint64
	RequestType    string
	Request        WorkloadSpec
	BackgroundType string       `json:",omitempty"`
	Background     WorkloadSpec `json:",omitempty"`
}

func serviceKey(cfg ServiceConfig, cl ServiceCell) serviceCellKey {
	k := serviceCellKey{
		Cell:        cl,
		Arrivals:    cfg.Arrivals,
		Requests:    cfg.Requests,
		Workers:     cfg.Workers,
		Queue:       cfg.Queue,
		ShedAfter:   cfg.ShedAfter,
		Batch:       cfg.Batch,
		MaxSteps:    cfg.MaxSteps,
		Cores:       cfg.Topology.Cores,
		LLC:         cfg.Topology.LLC,
		Quantum:     cfg.Topology.Quantum,
		RequestType: fmt.Sprintf("%T", cfg.Workload.Request),
		Request:     cfg.Workload.Request,
	}
	if cfg.Workload.Background != nil {
		k.BackgroundType = fmt.Sprintf("%T", cfg.Workload.Background)
		k.Background = cfg.Workload.Background
	}
	return k
}

// Serve runs the open-loop service sweep on the session's machine:
// every (policy, offered rate) cell of cfg's grid is one runner job —
// fanned out over the session's worker pool, served from the result
// cache when enabled — and the report assembles in grid order
// regardless of parallelism. A zero cfg.Topology inherits the
// session's (WithTopology): on a multi-core session each cell
// load-balances the one arrival stream across per-core policy engines
// under the cycle-quantum kernel. Each cell is a pure function of
// (machine, config, cell), so the rendered report is byte-identical
// across GOMAXPROCS settings and repeated runs.
func (s *Session) Serve(ctx context.Context, cfg ServiceConfig) (*ServiceReport, error) {
	if cfg.Topology.Cores == 0 {
		cfg.Topology = s.topo
	}
	norm, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	mach := s.topo.Machine
	cells := norm.Cells()
	jobs := make([]runner.Job, len(cells))
	for i, cl := range cells {
		cl := cl
		jobs[i] = runner.Job{
			ID:        cl.ResultID(),
			Mach:      mach,
			Service:   serviceKey(norm, cl),
			Cacheable: true,
			Run: func(m Machine) (*ExperimentResult, error) {
				cs, err := service.RunCell(m, norm, cl)
				if err != nil {
					return nil, err
				}
				return cs.Result(), nil
			},
		}
	}
	rs, err := runner.Run(ctx, jobs, runner.Options{Parallelism: s.parallelism, Cache: s.cache})
	if err != nil {
		return nil, err
	}
	rep := &ServiceReport{Cells: make([]ServiceCellStats, len(rs))}
	for i, r := range rs {
		cs, err := service.CellStatsFromResult(r.Res)
		if err != nil {
			return nil, fmt.Errorf("repro: %s: %w", r.Job.ID, err)
		}
		rep.Cells[i] = cs
	}
	return rep, nil
}

// LoadSweep is the one-call form of the paper's tail-latency
// experiment: build a session from opts (seed, parallelism, cache) and
// serve cfg's whole policy × rate grid through it.
//
//	rep, _ := repro.LoadSweep(ctx, repro.DefaultServiceConfig(),
//	    repro.WithParallelism(8), repro.WithCache(""))
//	fmt.Print(rep)
func LoadSweep(ctx context.Context, cfg ServiceConfig, opts ...Option) (*ServiceReport, error) {
	s, err := NewSession(opts...)
	if err != nil {
		return nil, err
	}
	return s.Serve(ctx, cfg)
}

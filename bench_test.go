package repro

// The benchmark harness: one testing.B benchmark per evaluation display
// item (Figure 1 and experiments E1–E20; see DESIGN.md §3). Each bench
// regenerates its table from scratch per iteration and reports the
// experiment's headline numbers as custom metrics, so
//
//	go test -bench . -benchmem
//
// reproduces the entire evaluation. cmd/shbench prints the same tables in
// human-readable form.

import (
	"context"
	"fmt"
	"testing"
)

// runExperiment executes one registered experiment b.N times and reports
// selected metrics.
func runExperiment(b *testing.B, id string, report map[string]string) {
	b.Helper()
	s, err := NewSession()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var res *ExperimentResult
	for i := 0; i < b.N; i++ {
		res, err = s.Run(ctx, id)
		if err != nil {
			b.Fatal(err)
		}
	}
	for metric, unit := range report {
		if v, ok := res.Metrics[metric]; ok {
			b.ReportMetric(v, unit)
		} else {
			b.Fatalf("experiment %s did not produce metric %q", id, metric)
		}
	}
}

// BenchmarkF1Spectrum regenerates Figure 1: CPU efficiency by hiding
// mechanism across event durations of 4 ns to 10 µs.
func BenchmarkF1Spectrum(b *testing.B) {
	runExperiment(b, "F1", map[string]string{
		"d100ns_coro": "eff@100ns/coro",
		"d100ns_smt8": "eff@100ns/smt8",
		"d100ns_none": "eff@100ns/none",
	})
}

// BenchmarkE1SwitchCost regenerates the §2 switch-cost comparison.
func BenchmarkE1SwitchCost(b *testing.B) {
	runExperiment(b, "E1", map[string]string{
		"coro_full_ns": "ns/full-switch",
		"coro_live_ns": "ns/live-switch",
	})
}

// BenchmarkE2StallFraction regenerates the §1 memory-bound stall table.
func BenchmarkE2StallFraction(b *testing.B) {
	runExperiment(b, "E2", map[string]string{
		"chase_stall_frac":    "stallfrac/chase",
		"hashjoin_stall_frac": "stallfrac/join",
	})
}

// BenchmarkE3SMTvsCoro regenerates the SMT-vs-coroutine concurrency sweep.
func BenchmarkE3SMTvsCoro(b *testing.B) {
	runExperiment(b, "E3", map[string]string{
		"smt8":   "eff/smt8",
		"coro32": "eff/coro32",
	})
}

// BenchmarkE4PipelineThroughput regenerates the end-to-end throughput
// table across all workloads.
func BenchmarkE4PipelineThroughput(b *testing.B) {
	runExperiment(b, "E4", map[string]string{
		"chase_pgo_speedup":    "speedup/chase",
		"hashjoin_pgo_speedup": "speedup/join",
		"bst_pgo_speedup":      "speedup/bst",
	})
}

// BenchmarkE5ThresholdSweep regenerates the §3.2 threshold trade-off.
func BenchmarkE5ThresholdSweep(b *testing.B) {
	runExperiment(b, "E5", map[string]string{"best_theta": "theta"})
}

// BenchmarkE6Ablations regenerates the live-mask and coalescing ablations.
func BenchmarkE6Ablations(b *testing.B) {
	runExperiment(b, "E6", map[string]string{
		"ctrue_ltrue_eff":   "eff/both",
		"cfalse_lfalse_eff": "eff/neither",
	})
}

// BenchmarkE7DualMode regenerates the §3.3 asymmetric-concurrency table.
func BenchmarkE7DualMode(b *testing.B) {
	runExperiment(b, "E7", map[string]string{
		"dual_eff":     "eff/dual",
		"dual_latency": "cycles/dual-latency",
		"sym_latency":  "cycles/sym-latency",
	})
}

// BenchmarkE8ScavengerScaling regenerates the scavenger-chaining table.
func BenchmarkE8ScavengerScaling(b *testing.B) {
	runExperiment(b, "E8", map[string]string{
		"chase_chains_per_episode": "chains/episode",
	})
}

// BenchmarkE9IntervalSweep regenerates the inter-yield-interval sweep.
func BenchmarkE9IntervalSweep(b *testing.B) {
	runExperiment(b, "E9", map[string]string{
		"interval_300_overshoot":  "cycles/overshoot@100ns",
		"interval_3000_overshoot": "cycles/overshoot@1µs",
	})
}

// BenchmarkE10SamplingPeriod regenerates the sampling-fidelity sweep.
func BenchmarkE10SamplingPeriod(b *testing.B) {
	runExperiment(b, "E10", map[string]string{
		"scale_1_mae":   "mae/dense",
		"scale_256_mae": "mae/sparse",
	})
}

// BenchmarkE11HWAssist regenerates the §4.1 hardware-assist comparison.
func BenchmarkE11HWAssist(b *testing.B) {
	runExperiment(b, "E11", map[string]string{
		"hw_skips": "skips",
		"hw_eff":   "eff/hw",
	})
}

// BenchmarkE12SFI regenerates the §4.2 SFI co-design table.
func BenchmarkE12SFI(b *testing.B) {
	runExperiment(b, "E12", map[string]string{
		"sfi_overhead":    "overhead/sfi",
		"codesign_folded": "guards-folded",
	})
}

// BenchmarkE13InlineAccuracy regenerates the §3.2 inline-accuracy
// comparison.
func BenchmarkE13InlineAccuracy(b *testing.B) {
	runExperiment(b, "E13", map[string]string{
		"bin_eff": "eff/binary-level",
		"src_eff": "eff/source-level",
	})
}

// BenchmarkE14SchedulerIntegration regenerates the §4.2 scheduler table.
func BenchmarkE14SchedulerIntegration(b *testing.B) {
	runExperiment(b, "E14", map[string]string{
		"sidecar_mean":  "cycles/sidecar-mean",
		"agnostic_mean": "cycles/agnostic-mean",
	})
}

// BenchmarkE15ProfilePortability regenerates the stale-profile table.
func BenchmarkE15ProfilePortability(b *testing.B) {
	runExperiment(b, "E15", map[string]string{
		"fresh_eff": "eff/fresh",
		"stale_eff": "eff/stale",
	})
}

// BenchmarkE16Accelerator regenerates the onboard-accelerator table.
func BenchmarkE16Accelerator(b *testing.B) {
	runExperiment(b, "E16", map[string]string{
		"lat450_speedup": "speedup@150ns",
		"lat450_pgo_eff": "eff@150ns",
	})
}

// BenchmarkE17PrefetcherInteraction regenerates the substrate ablation.
func BenchmarkE17PrefetcherInteraction(b *testing.B) {
	runExperiment(b, "E17", map[string]string{
		"scan_hwtrue_base_eff": "eff/scan-hw",
		"chase_hwtrue_pgo_eff": "eff/chase-pgo",
	})
}

// BenchmarkE18WindowWidth regenerates the concurrency-scaling sweep.
func BenchmarkE18WindowWidth(b *testing.B) {
	runExperiment(b, "E18", map[string]string{
		"w1_eff":  "eff/w1",
		"w16_eff": "eff/w16",
	})
}

// BenchmarkE19SamplingPrecision regenerates the PEBS-precision table.
func BenchmarkE19SamplingPrecision(b *testing.B) {
	runExperiment(b, "E19", map[string]string{
		"precise_eff": "eff/precise",
		"skid_eff":    "eff/skid",
	})
}

// BenchmarkE20SwitchCost regenerates the §4.1 switch-cost sensitivity.
func BenchmarkE20SwitchCost(b *testing.B) {
	runExperiment(b, "E20", map[string]string{
		"cost24_eff": "eff/8ns-switch",
		"cost4_eff":  "eff/1.7ns-switch",
	})
}

// BenchmarkCoreSimulator measures raw simulator throughput (retired
// instructions per second) on the pointer chase, as a harness sanity
// metric.
func BenchmarkCoreSimulator(b *testing.B) {
	h, err := NewHarness(DefaultTopology(1).Machine, PointerChase{Nodes: 4096, Hops: 2000, Instances: 1})
	if err != nil {
		b.Fatal(err)
	}
	img := h.Baseline()
	b.ResetTimer()
	var retired uint64
	for i := 0; i < b.N; i++ {
		ts, err := h.Tasks(img, "chase", Primary, 1)
		if err != nil {
			b.Fatal(err)
		}
		st, err := h.NewExecutor(img, ExecConfig{}).RunSolo(ts.Tasks[0])
		if err != nil {
			b.Fatal(err)
		}
		retired = st.Retired
	}
	b.ReportMetric(float64(retired), "instrs/run")
}

// BenchmarkCoreSimulatorALU measures simulator throughput on an
// ALU-dominated workload, the shape the block fast-path engine
// accelerates: long straight-line compute bodies with loop control, the
// kind of code that dominates retired instructions between yields. The
// pointer chase above is memory-bound (hierarchy modeling dominates);
// this one is dispatch-bound, so its step rate tracks the execution
// engine itself.
// BenchmarkMachineScaling measures aggregate simulator throughput of
// the many-core kernel on the ALU workload at 1/2/4/8 cores, MachineSolo
// per core — the host-parallelism scaling figure (each simulated core
// runs on its own goroutine, so aggregate rate should scale with host
// cores up to the topology size). The steady-state 0-alloc guarantee is
// pinned separately by TestMachineSteadyStateAllocs in internal/machine.
func BenchmarkMachineScaling(b *testing.B) {
	for _, cores := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			topo := DefaultTopology(cores)
			topo.Machine.MemBytes = 32 << 20
			s, err := NewSession(WithTopology(topo))
			if err != nil {
				b.Fatal(err)
			}
			// Iters is sized so simulated stepping dominates the per-
			// iteration scenario build (~33 MB of memory image): at 2000
			// iters setup is ~90% of wall time and the Minstr/s figure
			// measures the allocator, not the kernel.
			rc := MachineRun{
				Spec: UnrolledCompute{BlockInstrs: 64, Iters: 20000, Instances: 1},
				Mode: MachineSolo,
			}
			var retired uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := s.RunMachine(rc)
				if err != nil {
					b.Fatal(err)
				}
				retired = st.Aggregate.Retired
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(retired)*float64(b.N)/sec/1e6, "Minstr/s")
			}
			b.ReportMetric(float64(retired), "instrs/run")
		})
	}
}

// BenchmarkServiceThroughput measures the open-loop service harness
// end to end: one Serve cell (event-aware policy, Poisson arrivals at
// 4 req/µs) serving point-lookup requests over a batch tier. The
// req/s figure is host throughput of the serving loop — arrivals,
// admission, dispatch, sojourn recording — and p99_us is the simulated
// tail, reported so a scheduling regression shows up in the bench log
// even when raw throughput is unchanged.
func BenchmarkServiceThroughput(b *testing.B) {
	cfg := ServiceConfig{
		Workload: Workload{
			Request:    PointerChase{Nodes: 512, Hops: 4, Instances: 4},
			Background: Compute{Iters: 3000, Instances: 2},
		},
		Arrivals: ArrivalSpec{Kind: ArrivalPoisson, Rate: 4},
		Requests: 5000,
		Workers:  4,
		Queue:    64,
		Batch:    2,
		Policies: []ServicePolicy{PolicyEventAware},
	}
	s, err := NewSession()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	var rep *ServiceReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = s.Serve(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cell := rep.Cell(PolicyEventAware, 4)
	if cell == nil || cell.Completed != cell.Requests {
		b.Fatalf("event-aware cell incomplete: %+v", cell)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(cell.Completed)*float64(b.N)/sec, "req/s")
	}
	b.ReportMetric(cell.P99Micros(), "p99_us")
}

// BenchmarkServeMulticore measures the multi-core dispatcher end to
// end: one event-aware cell at 8 req/µs — past single-core saturation —
// spread over 1/2/4/8 per-core engines by the quantum dispatcher. The
// req/s figure is wall-clock serving throughput (completed requests per
// host second): per-core engines run on their own goroutines, so on a
// host with that much parallelism the figure should scale with the
// topology until the arrival stream is drained dry (≥3× at 4 cores);
// on fewer host CPUs the extra simulated cores still complete more
// requests per run but serially. completed/run and p99_us expose both
// effects in the bench log.
func BenchmarkServeMulticore(b *testing.B) {
	for _, cores := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			cfg := ServiceConfig{
				Workload: Workload{
					Request:    PointerChase{Nodes: 1024, Hops: 8, Instances: 4},
					Background: Compute{Iters: 1500, Instances: 2},
				},
				Arrivals: ArrivalSpec{Kind: ArrivalPoisson, Rate: 8},
				Rates:    []float64{8},
				Requests: 4000,
				Workers:  4,
				Queue:    64,
				Batch:    2,
				Policies: []ServicePolicy{PolicyEventAware},
				Topology: Topology{Cores: cores},
			}
			s, err := NewSession()
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			var rep *ServiceReport
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err = s.Serve(ctx, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cell := rep.Cell(PolicyEventAware, 8)
			if cell == nil || cell.Completed+cell.Dropped+cell.Shed != cell.Requests {
				b.Fatalf("event-aware cell lost requests: %+v", cell)
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(cell.Completed)*float64(b.N)/sec, "req/s")
			}
			b.ReportMetric(float64(cell.Completed), "completed/run")
			b.ReportMetric(cell.P99Micros(), "p99_us")
		})
	}
}

func BenchmarkCoreSimulatorALU(b *testing.B) {
	h, err := NewHarness(DefaultTopology(1).Machine, UnrolledCompute{BlockInstrs: 64, Iters: 2000, Instances: 1})
	if err != nil {
		b.Fatal(err)
	}
	img := h.Baseline()
	b.ResetTimer()
	var retired uint64
	for i := 0; i < b.N; i++ {
		ts, err := h.Tasks(img, "unrolled", Primary, 1)
		if err != nil {
			b.Fatal(err)
		}
		st, err := h.NewExecutor(img, ExecConfig{}).RunSolo(ts.Tasks[0])
		if err != nil {
			b.Fatal(err)
		}
		retired = st.Retired
	}
	b.ReportMetric(float64(retired), "instrs/run")
}

package repro

import (
	"context"
	"runtime"
	"strings"
	"testing"
)

// acceptanceConfig is the PR's headline sweep: one Session.Serve call
// offering a million requests (4 cells × 250k) at swept load, with the
// batch tier present so the class-blind policy exhibits the paper's
// queueing pathology.
func acceptanceConfig() ServiceConfig {
	return ServiceConfig{
		Workload: Workload{
			// A point lookup: a short dependent-pointer walk per request.
			Request:    PointerChase{Nodes: 512, Hops: 4, Instances: 4},
			Background: Compute{Iters: 3000, Instances: 2},
		},
		Arrivals: ArrivalSpec{Kind: ArrivalPoisson, Rate: 4},
		Rates:    []float64{4, 8},
		Requests: 250_000,
		Workers:  4,
		Queue:    64,
		Batch:    2,
		Policies: []ServicePolicy{PolicyAgnostic, PolicyEventAware},
	}
}

// TestServeMillionRequestsDeterministic is the acceptance check: a
// single Serve over ≥1M simulated requests at swept offered load
// renders per-policy throughput and p50/p99/p999 sojourn tables
// byte-identically at GOMAXPROCS 1, 2 and 8 and on a repeated run —
// and EventAware beats Agnostic on p99 in the same report (pinned
// regression below).
func TestServeMillionRequestsDeterministic(t *testing.T) {
	cfg := acceptanceConfig()
	s, err := NewSession(WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var ref string
	var rep *ServiceReport
	// The second 8 is the repeated-run check.
	for _, procs := range []int{1, 2, 8, 8} {
		runtime.GOMAXPROCS(procs)
		r, err := s.Serve(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := r.String()
		if ref == "" {
			ref, rep = out, r
			continue
		}
		if out != ref {
			t.Fatalf("GOMAXPROCS=%d: report diverged from reference:\n%s\n--- want ---\n%s", procs, out, ref)
		}
	}

	var total uint64
	for _, c := range rep.Cells {
		total += c.Requests
		if c.Completed+c.Dropped+c.Shed != c.Requests {
			t.Errorf("%s rate=%g: completed %d + dropped %d + shed %d != arrivals %d",
				c.Policy, c.Rate, c.Completed, c.Dropped, c.Shed, c.Requests)
		}
	}
	if total < 1_000_000 {
		t.Fatalf("sweep offered %d requests, acceptance needs ≥ 1M", total)
	}

	for _, want := range []string{"thr_per_us", "p50_us", "p99_us", "p999_us",
		"service: agnostic", "service: event-aware", "p99 sojourn"} {
		if !strings.Contains(ref, want) {
			t.Errorf("report missing %q:\n%s", want, ref)
		}
	}

	// Pinned regression: at moderate offered load the event-aware
	// policy must beat the class-blind one on p99 sojourn — the paper's
	// core claim. The margin is orders of magnitude (requests queue
	// behind whole batch ops under Agnostic), so >= would indicate a
	// real scheduling regression, not noise.
	ag := rep.Cell(PolicyAgnostic, 4)
	ea := rep.Cell(PolicyEventAware, 4)
	if ag == nil || ea == nil {
		t.Fatal("cells missing from report")
	}
	if ea.P99 >= ag.P99 {
		t.Errorf("event-aware p99 %d cycles is not better than agnostic %d at rate 4/µs", ea.P99, ag.P99)
	}
	if ea.Completed != ea.Requests {
		t.Errorf("event-aware left requests unserved: %d/%d", ea.Completed, ea.Requests)
	}
}

// TestServeCacheReplayIdentity: a cell replayed from the result cache
// renders byte-identically to one served fresh — the property the
// runner cache's Service key exists for.
func TestServeCacheReplayIdentity(t *testing.T) {
	cfg := DefaultServiceConfig()
	cfg.Workload = Workload{
		Request:    PointerChase{Nodes: 1024, Hops: 8, Instances: 4},
		Background: Compute{Iters: 1500, Instances: 2},
	}
	cfg.Requests = 300
	cfg.Rates = []float64{0.2}
	cfg.Policies = []ServicePolicy{PolicySidecar, PolicySMT}

	dir := t.TempDir()
	fresh, err := LoadSweep(context.Background(), cfg, WithCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := LoadSweep(context.Background(), cfg, WithCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.String() != cached.String() {
		t.Fatalf("cache replay diverged:\nfresh:\n%s\ncached:\n%s", fresh, cached)
	}
	// A different grid must not collide with the cached cells.
	cfg.Rates = []float64{0.4}
	other, err := LoadSweep(context.Background(), cfg, WithCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	if other.String() == fresh.String() {
		t.Fatal("different offered load served identical (cache key ignored the service config)")
	}
}

// TestServeValidates: structural mistakes fail before any simulation.
func TestServeValidates(t *testing.T) {
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultServiceConfig()
	cfg.Requests = -1
	if _, err := s.Serve(context.Background(), cfg); err == nil {
		t.Error("negative request count accepted")
	}
	cfg = DefaultServiceConfig()
	cfg.Rates = []float64{0}
	if _, err := s.Serve(context.Background(), cfg); err == nil {
		t.Error("zero offered rate accepted")
	}
}

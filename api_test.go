package repro

import (
	"context"
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd exercises the façade exactly as the README shows.
func TestPublicAPIEndToEnd(t *testing.T) {
	h, err := NewHarness(DefaultTopology(1).Machine,
		PointerChase{Nodes: 2048, Hops: 500, Instances: 4})
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := h.Profile("chase")
	if err != nil {
		t.Fatal(err)
	}
	img, err := h.Instrument(prof, DefaultPipelineOptions())
	if err != nil {
		t.Fatal(err)
	}
	ts, err := h.Tasks(img, "chase", Primary, 4)
	if err != nil {
		t.Fatal(err)
	}
	st, err := h.NewExecutor(img, ExecConfig{}).RunSymmetric(ts.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Efficiency() <= 0 || st.Cycles == 0 {
		t.Error("empty stats")
	}
}

func TestPublicAPIDualMode(t *testing.T) {
	h, err := NewHarness(DefaultTopology(1).Machine,
		HashJoin{BuildRows: 2048, Buckets: 1024, Probes: 100, MatchFraction: 0.7, Instances: 1},
		Compute{Iters: 1_000_000, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := h.Profile("hashjoin")
	if err != nil {
		t.Fatal(err)
	}
	img, err := h.Instrument(prof, DefaultPipelineOptions())
	if err != nil {
		t.Fatal(err)
	}
	pts, err := h.Tasks(img, "hashjoin", Primary, 1)
	if err != nil {
		t.Fatal(err)
	}
	sts, err := h.Tasks(img, "compute", Scavenger, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := h.NewExecutor(img, ExecConfig{}).RunDualMode(pts.Tasks[0], sts.Tasks)
	if err != nil {
		t.Fatal(err)
	}
	if err := pts.Validate(); err != nil {
		t.Fatal(err)
	}
	if st.Episodes == 0 || st.PrimaryLatency == 0 {
		t.Error("dual mode did not hide anything")
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ids := s.ExperimentIDs()
	if len(ids) < 14 {
		t.Fatalf("registry short: %v", ids)
	}
	found := false
	for _, id := range ids {
		if id == "E7" {
			found = true
		}
	}
	if !found {
		t.Error("E7 missing")
	}
	// Unknown IDs fail upfront, before any simulation.
	if _, err := s.Run(context.Background(), "Z9"); err == nil {
		t.Error("bogus experiment ran")
	}
}

func TestCostModelsExposed(t *testing.T) {
	if DefaultCostModel().FullCost() >= OSThreadCostModel().FullCost() {
		t.Error("coroutine switches must be cheaper than thread switches")
	}
	if NS(3000) != 1000 {
		t.Error("NS conversion wrong")
	}
}

func TestAssemblerExposed(t *testing.T) {
	prog, err := Assemble(`
        movi r1, 41
        addi r1, r1, 1
        halt
    `)
	if err != nil {
		t.Fatal(err)
	}
	img := Encode(prog)
	back, err := Decode(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Instrs) != 3 {
		t.Error("round trip lost instructions")
	}
	if !strings.Contains(Disassemble(back), "movi r1, 41") {
		t.Error("disassembly missing source")
	}
}

func TestManualAnnotationAndSFIExposed(t *testing.T) {
	prog, err := Assemble(`
        movi r2, 4096
        load r1, [r2]
        halt
    `)
	if err != nil {
		t.Fatal(err)
	}
	annotated, _, err := AnnotateLoads(prog, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	hardened, res, err := SFIHarden(annotated, SFIOptions{CoDesign: true, GuardStores: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded != 1 {
		t.Errorf("folded = %d, want 1 (load follows the inserted yield)", res.Folded)
	}
	if len(hardened.Instrs) != len(annotated.Instrs) {
		t.Error("co-designed guard should not add instructions here")
	}
}

// Package metricsguard verifies that every access through a
// *repro/internal/metrics.Registry or *metrics.FineHist pointer is
// nil-guarded. The observability contract (ARCHITECTURE.md §8) is that
// metrics are strictly opt-in: a nil registry means "off", a nil
// histogram means "not recorded", and every bump site in the cycle
// domain must tolerate both. A single unguarded site panics only in
// the configurations that don't enable metrics — exactly the ones the
// test matrix exercises least.
//
// Two guard idioms are recognized, matching the repository's style:
//
//	if m := e.Cfg.Metrics; m != nil { m.Episodes++ }   // guarded block
//	m := e.Cfg.Metrics
//	if m == nil { return }                             // early return
//	m.Episodes++
//
// including `&&` conjunctions (`if m != nil && enabled {...}`), `||`
// disjunctions in early returns (`if m == nil || done { return }` does
// NOT guard — only `if m == nil || other == nil { return }` guards
// both), and else-branches of `if m == nil {...} else {...}`.
// Reassigning a guarded variable drops its guard. Test files and the
// metrics package itself (whose methods legitimately use their
// receiver) are exempt.
package metricsguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/analyzers/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "metricsguard",
	Doc: "require nil guards on every use of a *metrics.Registry or *metrics.FineHist\n\n" +
		"A nil registry disables observability (and a nil histogram a single series); " +
		"unguarded bump sites panic in metrics-off configurations.",
	Run: run,
}

func run(pass *framework.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/metrics") {
		return nil // the registry's own methods use their receiver freely
	}
	c := &checker{pass: pass}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.stmts(fd.Body.List, map[string]bool{})
			}
		}
	}
	return nil
}

type checker struct {
	pass *framework.Pass
}

// isGuardedPtr reports whether t is *metrics.Registry or
// *metrics.FineHist (matched by package-path suffix so vendored or
// test-stub copies also count). These are the two pointer types the
// observability contract allows to be nil.
func isGuardedPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/metrics") {
		return false
	}
	return obj.Name() == "Registry" || obj.Name() == "FineHist"
}

// stmts walks a statement sequence with the set of guarded registry
// expressions (keyed by types.ExprString). Guards established by an
// early-return nil check extend to the statements that follow it;
// guards from an `if x != nil` condition cover only its body, which is
// handled in stmt.
func (c *checker) stmts(list []ast.Stmt, guarded map[string]bool) {
	g := clone(guarded)
	for _, s := range list {
		c.stmt(s, g)
		switch s := s.(type) {
		case *ast.IfStmt:
			// `if x == nil { return }` guards everything after it,
			// provided the body cannot fall through and there is no else.
			if s.Else == nil && s.Init == nil && terminates(s.Body) {
				for _, e := range nilCompares(s.Cond, token.EQL, token.LOR) {
					g[e] = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				delete(g, types.ExprString(lhs)) // reassignment invalidates the guard
			}
		}
	}
}

func (c *checker) stmt(s ast.Stmt, g map[string]bool) {
	switch s := s.(type) {
	case nil:
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, g)
		}
		c.expr(s.Cond, g)
		bodyG := clone(g)
		for _, e := range nilCompares(s.Cond, token.NEQ, token.LAND) {
			bodyG[e] = true
		}
		// `if m := expr; m != nil` also proves expr itself non-nil.
		if as, ok := s.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE &&
			len(as.Lhs) == 1 && len(as.Rhs) == 1 && bodyG[types.ExprString(as.Lhs[0])] {
			bodyG[types.ExprString(as.Rhs[0])] = true
		}
		c.stmts(s.Body.List, bodyG)
		if s.Else != nil {
			elseG := clone(g)
			for _, e := range nilCompares(s.Cond, token.EQL, token.LOR) {
				elseG[e] = true
			}
			c.stmt(s.Else, elseG)
		}
	case *ast.BlockStmt:
		c.stmts(s.List, g)
	case *ast.ForStmt:
		c.stmt(s.Init, g)
		c.expr(s.Cond, g)
		c.stmt(s.Post, g)
		c.stmts(s.Body.List, g)
	case *ast.RangeStmt:
		c.expr(s.X, g)
		c.stmts(s.Body.List, g)
	case *ast.SwitchStmt:
		c.stmt(s.Init, g)
		c.expr(s.Tag, g)
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CaseClause)
			for _, e := range cl.List {
				c.expr(e, g)
			}
			c.stmts(cl.Body, g)
		}
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, g)
		c.stmt(s.Assign, g)
		for _, cc := range s.Body.List {
			c.stmts(cc.(*ast.CaseClause).Body, g)
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CommClause)
			c.stmt(cl.Comm, g)
			c.stmts(cl.Body, g)
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, g)
	case *ast.DeferStmt:
		c.expr(s.Call, g)
	case *ast.GoStmt:
		c.expr(s.Call, g)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, g)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, g)
		}
		for _, e := range s.Lhs {
			c.expr(e, g)
		}
	case *ast.IncDecStmt:
		c.expr(s.X, g)
	case *ast.ExprStmt:
		c.expr(s.X, g)
	case *ast.SendStmt:
		c.expr(s.Chan, g)
		c.expr(s.Value, g)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.expr(e, g)
					}
				}
			}
		}
	}
}

// expr flags selector uses `X.f` where X is a *metrics.Registry not in
// the guarded set. Function literals are analyzed as statement bodies
// inheriting the enclosing guards (the captured pointer cannot become
// nil once proven non-nil, short of an explicit reassignment, which
// stmts handles).
func (c *checker) expr(e ast.Expr, g map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.stmts(n.Body.List, g)
			return false
		case *ast.SelectorExpr:
			if isGuardedPtr(c.pass.TypesInfo.TypeOf(n.X)) {
				key := types.ExprString(n.X)
				if !g[key] {
					c.pass.Reportf(n.Pos(),
						"unguarded use of metrics pointer %s (may be nil when observability is off): wrap in `if m := %s; m != nil { ... }` or add an early nil return",
						key, key)
				}
			}
		}
		return true
	})
}

// nilCompares collects the non-nil operands of `x <op> nil` comparisons
// joined by the given logical operator, e.g. (NEQ, LAND) matches the
// x's of `x != nil && y != nil`, and (EQL, LOR) the x's of
// `x == nil || y == nil`. Parentheses are transparent.
func nilCompares(e ast.Expr, op, join token.Token) []string {
	var out []string
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.ParenExpr:
			walk(e.X)
		case *ast.BinaryExpr:
			switch e.Op {
			case join:
				walk(e.X)
				walk(e.Y)
			case op:
				if isNilIdent(e.Y) {
					out = append(out, types.ExprString(e.X))
				} else if isNilIdent(e.X) {
					out = append(out, types.ExprString(e.Y))
				}
			}
		}
	}
	walk(e)
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a block always transfers control away:
// its last statement is a return, branch (break/continue/goto), or
// panic call.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func clone(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

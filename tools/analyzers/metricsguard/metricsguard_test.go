package metricsguard

import (
	"strings"
	"testing"

	"go/types"

	"repro/tools/analyzers/internal/analyzertest"
)

func deps() map[string]*types.Package {
	return map[string]*types.Package{
		"repro/internal/metrics": analyzertest.Metrics(),
	}
}

func check(t *testing.T, src string) []string {
	t.Helper()
	diags := analyzertest.Check(t, "repro/internal/exec",
		map[string]string{"fixture.go": src}, deps(), Analyzer)
	return analyzertest.Messages(diags)
}

const header = `package exec

import "repro/internal/metrics"

type Config struct {
	Metrics *metrics.Registry
}

type Executor struct {
	Cfg Config
}
`

func TestUnguardedUseFlagged(t *testing.T) {
	msgs := check(t, header+`
func (e *Executor) bad() {
	e.Cfg.Metrics.Hides++
}

func alsoBad(m *metrics.Registry) uint64 {
	return m.Faults
}
`)
	if len(msgs) != 2 {
		t.Fatalf("want 2 diagnostics, got %v", msgs)
	}
	if !strings.Contains(msgs[0], "e.Cfg.Metrics") || !strings.Contains(msgs[1], "pointer m") {
		t.Fatalf("diagnostics should name the unguarded expression: %v", msgs)
	}
}

func TestGuardIdiomsAccepted(t *testing.T) {
	msgs := check(t, header+`
func (e *Executor) ifInitAlias() {
	if m := e.Cfg.Metrics; m != nil {
		m.Hides++
		e.Cfg.Metrics.Faults++ // the alias proves the source expression too
	}
}

func (e *Executor) directGuard() {
	if e.Cfg.Metrics != nil {
		e.Cfg.Metrics.Hides++
	}
}

func (e *Executor) earlyReturn() {
	m := e.Cfg.Metrics
	if m == nil {
		return
	}
	m.Hides++
}

func (e *Executor) conjunction(on bool) {
	if m := e.Cfg.Metrics; m != nil && on {
		m.Faults++
	}
}

func (e *Executor) disjunctionReturn(other *metrics.Registry) {
	m := e.Cfg.Metrics
	if m == nil || other == nil {
		return
	}
	m.Hides += other.Faults
}

func (e *Executor) elseBranch() {
	m := e.Cfg.Metrics
	if m == nil {
		_ = m
	} else {
		m.Hides++
	}
}

func (e *Executor) closureInheritsGuard() func() {
	m := e.Cfg.Metrics
	if m == nil {
		return nil
	}
	return func() { m.Hides++ }
}

func (e *Executor) panicGuard() {
	m := e.Cfg.Metrics
	if m == nil {
		panic("metrics required")
	}
	m.Hides++
}
`)
	if len(msgs) != 0 {
		t.Fatalf("want no diagnostics for guarded idioms, got %v", msgs)
	}
}

func TestGuardDoesNotLeak(t *testing.T) {
	msgs := check(t, header+`
func (e *Executor) guardEndsWithBlock() {
	if m := e.Cfg.Metrics; m != nil {
		m.Hides++
	}
	e.Cfg.Metrics.Faults++ // guard above does not cover this
}

func (e *Executor) disjunctionWithNonNilArm(done bool) {
	m := e.Cfg.Metrics
	if m == nil || done {
		return
	}
	// Reaching here does prove m != nil (both arms false), so this is
	// fine — but the reverse conjunction must not be treated as a guard:
	m.Hides++
}

func (e *Executor) reassignmentDropsGuard() {
	m := e.Cfg.Metrics
	if m == nil {
		return
	}
	m = nil
	m.Hides++ // flagged: m was reassigned after the guard
}

func (e *Executor) conditionOnlyGuardsBody(on bool) {
	if e.Cfg.Metrics != nil && on {
		_ = on
	}
	e.Cfg.Metrics.Hides++ // flagged: the if body ended
}
`)
	want := []string{"guardEndsWithBlock", "reassignment", "conditionOnlyGuardsBody"}
	if len(msgs) != len(want) {
		t.Fatalf("want %d diagnostics, got %v", len(want), msgs)
	}
}

func TestNonDerefUsesAllowed(t *testing.T) {
	msgs := check(t, header+`
func sink(m *metrics.Registry) {}

func (e *Executor) passingThePointerIsFine() {
	sink(e.Cfg.Metrics)           // handing the pointer off: fine
	_ = e.Cfg.Metrics == nil      // comparing: fine
	var m *metrics.Registry       // declaring: fine
	_ = m
}
`)
	// sink's body is empty so its parameter is never dereferenced.
	if len(msgs) != 0 {
		t.Fatalf("want no diagnostics, got %v", msgs)
	}
}

func TestTestFilesAndMetricsPackageExempt(t *testing.T) {
	src := header + `
func (e *Executor) bump() {
	e.Cfg.Metrics.Hides++
}
`
	diags := analyzertest.Check(t, "repro/internal/exec",
		map[string]string{"fixture_test.go": src}, deps(), Analyzer)
	if len(diags) != 0 {
		t.Fatalf("test files should be exempt, got %v", analyzertest.Messages(diags))
	}
	diags = analyzertest.Check(t, "repro/internal/metrics",
		map[string]string{"registry2.go": src}, deps(), Analyzer)
	if len(diags) != 0 {
		t.Fatalf("the metrics package itself should be exempt, got %v",
			analyzertest.Messages(diags))
	}
}

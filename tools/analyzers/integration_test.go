// Package analyzers_test exercises the full vettool protocol: it
// builds the real shlint binary and runs `go vet -vettool=shlint` over
// the fixture module in testdata/detlintmod, asserting that the
// cycle-domain package is rejected with rule-identifying diagnostics
// and the control package passes. This is the one test that proves the
// unitchecker handshake (-V=full, -flags, vet.cfg, vet.out) against
// the actual go command rather than a reimplementation of it.
package analyzers_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildShlint compiles the vettool into t.TempDir and returns its path.
func buildShlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "shlint")
	cmd := exec.Command("go", "build", "-o", bin, "repro/tools/analyzers/shlint")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building shlint: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // tools/analyzers -> repo root
}

func runVet(t *testing.T, vettool, dir string, pkgs ...string) (string, error) {
	t.Helper()
	args := append([]string{"vet", "-vettool=" + vettool}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}

func TestVettoolFlagsFixtureModule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes the go command")
	}
	shlint := buildShlint(t)
	fixture := filepath.Join(repoRoot(t), "tools", "analyzers", "testdata", "detlintmod")

	out, err := runVet(t, shlint, fixture, "./...")
	if err == nil {
		t.Fatalf("go vet should fail on the fixture module; output:\n%s", out)
	}
	for _, want := range []string{
		"reclaim.go",
		"range over map",
		"time.Now",
		"math/rand",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vet output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ok.go") || strings.Contains(out, "profile") {
		t.Errorf("control package outside the cycle domain was flagged:\n%s", out)
	}
}

func TestVettoolPassesControlPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes the go command")
	}
	shlint := buildShlint(t)
	fixture := filepath.Join(repoRoot(t), "tools", "analyzers", "testdata", "detlintmod")

	out, err := runVet(t, shlint, fixture, "./internal/profile/")
	if err != nil {
		t.Fatalf("clean package rejected: %v\n%s", err, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("expected silent pass, got:\n%s", out)
	}
}

// Package analyzers_test exercises the full vettool protocol: it
// builds the real shlint binary and runs `go vet -vettool=shlint` over
// the fixture module in testdata/detlintmod, asserting that every
// seeded defect is caught by the right analyzer and rule and the
// control packages pass. This is the suite that proves the unitchecker
// handshake (-V=full, -flags, vet.cfg, vetx fact files, vet.out)
// against the actual go command rather than a reimplementation of it.
package analyzers_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildShlint compiles the vettool into t.TempDir and returns its path.
func buildShlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "shlint")
	cmd := exec.Command("go", "build", "-o", bin, "repro/tools/analyzers/shlint")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building shlint: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // tools/analyzers -> repo root
}

func fixtureDir(t *testing.T) string {
	return filepath.Join(repoRoot(t), "tools", "analyzers", "testdata", "detlintmod")
}

func runVet(t *testing.T, vettool, dir string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + vettool}, args...)...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}

// TestVettoolFlagsFixtureModule sweeps the whole fixture module and
// checks one seeded defect per analyzer rule, with attribution.
func TestVettoolFlagsFixtureModule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes the go command")
	}
	shlint := buildShlint(t)
	out, err := runVet(t, shlint, fixtureDir(t), "./...")
	if err == nil {
		t.Fatalf("go vet should fail on the fixture module; output:\n%s", out)
	}
	for _, want := range []string{
		// detlint: lexical bans inside cycle-domain package names.
		"reclaim.go", "detlint(maprange)", "detlint(wallclock)", "detlint(randimport)",
		// detflow: interprocedural taint through wrapper and package
		// boundary — the PR-1 reclaim bug in disguise, with the chain.
		"detflow(maprange)", "(*Engine).Step → (*Engine).harvest → Ready",
		"detflow(wallclock)", "(*Engine).Tick → stamp",
		"detflow(select)", "Drain",
		// barrierguard: quantum protocol.
		"barrierguard(quantum-mutate)", "(*core).Run → (*core).flush → (*SharedLLC).Commit",
		"barrierguard(unclassified)", "(*SharedLLC).Evict",
		"barrierguard(conflict)", "(*Probe).Sample",
		// allocguard vet layer.
		"allocguard(make)", "allocguard(goroutine)", "allocguard(fmtcall)",
		// metricsguard, including the FineHist extension.
		"unguarded use of metrics pointer t.Reg",
		"unguarded use of metrics pointer t.Hist",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vet output missing %q:\n%s", want, out)
		}
	}
	for _, clean := range []string{"ok.go", "profile", "Barrier", "Guarded", "fillutil/ready.go"} {
		if strings.Contains(out, clean) {
			t.Errorf("control %q was flagged:\n%s", clean, out)
		}
	}
}

func TestVettoolPassesControlPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes the go command")
	}
	shlint := buildShlint(t)
	out, err := runVet(t, shlint, fixtureDir(t), "./internal/profile/")
	if err != nil {
		t.Fatalf("clean package rejected: %v\n%s", err, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("expected silent pass, got:\n%s", out)
	}
}

// TestVettoolRunSelection forwards -run through the go command: with
// only detlint selected, the engine package (whose defects are all
// detflow findings) must pass.
func TestVettoolRunSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes the go command")
	}
	shlint := buildShlint(t)
	out, err := runVet(t, shlint, fixtureDir(t), "-run=detlint", "./internal/engine/")
	if err != nil {
		t.Fatalf("-run=detlint should pass the engine package: %v\n%s", err, out)
	}
	out, err = runVet(t, shlint, fixtureDir(t), "-run=detflow", "./internal/engine/")
	if err == nil {
		t.Fatalf("-run=detflow should still fail the engine package:\n%s", out)
	}
	if !strings.Contains(out, "detflow(") || strings.Contains(out, "detlint(") {
		t.Errorf("want only detflow diagnostics, got:\n%s", out)
	}
}

// TestVettoolJSONOutput forwards -json and decodes the structured
// diagnostics, asserting rule attribution survives the wire format.
func TestVettoolJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes the go command")
	}
	shlint := buildShlint(t)
	cmd := exec.Command("go", "vet", "-vettool="+shlint, "-json", "./internal/hot/")
	cmd.Dir = fixtureDir(t)
	// The go command folds the tool's stdout into its own diagnostic
	// stream, so the JSON lines arrive on go vet's stderr.
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if cmd.Run() == nil {
		t.Fatalf("hot package should fail; output:\n%s", out.String())
	}
	type wireDiag struct {
		Analyzer string `json:"analyzer"`
		Rule     string `json:"rule"`
		Posn     string `json:"posn"`
		Message  string `json:"message"`
	}
	rules := map[string]int{}
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || !strings.HasPrefix(line, "{") {
			continue
		}
		var unit struct {
			Package     string     `json:"package"`
			Diagnostics []wireDiag `json:"diagnostics"`
		}
		if err := json.Unmarshal([]byte(line), &unit); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if unit.Package != "detlintfixture/internal/hot" {
			continue
		}
		for _, d := range unit.Diagnostics {
			if d.Analyzer != "allocguard" {
				t.Errorf("unexpected analyzer %q in hot package: %+v", d.Analyzer, d)
			}
			if d.Posn == "" || d.Message == "" {
				t.Errorf("incomplete diagnostic: %+v", d)
			}
			rules[d.Rule]++
		}
	}
	if rules["make"] != 2 || rules["goroutine"] != 1 || rules["fmtcall"] != 1 {
		t.Errorf("want 2 make + 1 goroutine + 1 fmtcall in JSON output, got %v", rules)
	}
}

// TestVettoolVendoredModule proves the vet.cfg ImportMap handling: a
// module whose dependency resolves through vendor/ presents vendored
// import paths in the config, and the tool must still find export data
// and fact files for it.
func TestVettoolVendoredModule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes the go command")
	}
	shlint := buildShlint(t)
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":                        "module vendfixture\n\ngo 1.22\n\nrequire example.com/dep v0.0.0\n",
		"vendor/modules.txt":            "# example.com/dep v0.0.0\n## explicit; go 1.22\nexample.com/dep\n",
		"vendor/example.com/dep/go.mod": "module example.com/dep\n\ngo 1.22\n",
		"vendor/example.com/dep/dep.go": `package dep

// Tick ranges a map inside the dependency.
func Tick(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`,
		"internal/exec/step.go": `package exec

import "example.com/dep"

//shsim:cycle-entry
func Step(m map[int]int) int { return dep.Tick(m) }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out, err := runVet(t, shlint, dir, "-mod=vendor", "./...")
	if err == nil {
		t.Fatalf("vendored module should fail vet (detflow through the vendored dep):\n%s", out)
	}
	if strings.Contains(out, "no export data") || strings.Contains(out, "typechecking") {
		t.Fatalf("vendored import paths broke type-checking:\n%s", out)
	}
	// The vendored unit is vetted for facts like any other in-module
	// dependency, so detflow's taint crosses the vendor boundary: the
	// map range in example.com/dep reaches the annotated entry.
	if !strings.Contains(out, "detflow(maprange)") || !strings.Contains(out, "Step → Tick") {
		t.Errorf("want detflow taint through the vendored dep:\n%s", out)
	}
}

// TestVettoolVersionAndFlagsHandshake runs the two protocol probe
// invocations the go command issues before any vet.cfg.
func TestVettoolVersionAndFlagsHandshake(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	shlint := buildShlint(t)

	out, err := exec.Command(shlint, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !regexp.MustCompile(`^shlint(\.exe)? version 2\.0-[0-9a-f]{12}\n$`).Match(out) {
		t.Errorf("-V=full output %q does not match the cache-key contract", out)
	}

	out, err = exec.Command(shlint, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var flags []struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	if err := json.Unmarshal(out, &flags); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, out)
	}
	got := map[string]bool{}
	for _, f := range flags {
		got[f.Name] = f.Bool
		if f.Usage == "" {
			t.Errorf("flag %s has no usage", f.Name)
		}
	}
	if b, ok := got["run"]; !ok || b {
		t.Errorf("want string flag \"run\", got %v", flags)
	}
	if b, ok := got["json"]; !ok || !b {
		t.Errorf("want bool flag \"json\", got %v", flags)
	}
}

// TestAllocGateOnFixture runs the escape-analysis layer over the
// fixture's hot package: the vet layer cannot see Leak or Fib, only
// the compiler's own diagnostics can.
func TestAllocGateOnFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and invokes the go compiler")
	}
	shlint := buildShlint(t)
	cmd := exec.Command(shlint, "-allocgate", "./internal/hot/")
	cmd.Dir = fixtureDir(t)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	if err == nil {
		t.Fatalf("gate should fail on the hot package:\n%s", buf.String())
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 on violations, got %v:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"allocguard(heapalloc)", "Leak",
		"allocguard(inline)", "Fib",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("gate output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Sum") {
		t.Errorf("clean hot function Sum must pass the gate:\n%s", out)
	}
}

// Package detflow proves, interprocedurally, that the cycle domain
// cannot observe a nondeterminism source. detlint bans the dangerous
// constructs lexically inside cycle-domain packages; detflow closes
// the remaining hole — a cycle-domain step loop calling an innocent-
// looking helper in a non-cycle package that ranges over a map three
// frames down. The PR-1 reclaim bug wore exactly that disguise in its
// fixture form: the map iteration sat behind a wrapper, outside the
// lexical ban, and still decided eviction order.
//
// # Model
//
// Entry points are the functions annotated `//shsim:cycle-entry` — the
// exec/smt/machine/service step loops and the runner's per-job cell
// executor. For every function in every in-module package, detflow
// computes whether it transitively reaches one of the sources below,
// exporting the result as a framework fact so the analysis composes
// across packages (facts flow bottom-up: the package defining the
// helper is analyzed before the package whose entry point calls it).
// An entry point that reaches a source is reported with the full call
// chain and the originating construct, attributed to one of the rules:
//
//	wallclock   time.Now / time.Since / time.Until
//	globalrand  package-level math/rand and math/rand/v2 functions
//	            (the process-seeded global source; methods on an
//	            explicitly seeded *rand.Rand are fine)
//	maprange    range over a map (iteration order is per-run random;
//	            also covers "harvest map keys then use unsorted")
//	select      select with two or more communication cases (the
//	            runtime picks among ready cases pseudo-randomly)
//	addrformat  fmt verbs rendering addresses (%p) — output depends
//	            on allocator placement
//	addrvalue   uintptr conversion of a pointer — address-dependent
//	            arithmetic, ordering, or hashing
//	mapkeys     reflect.Value.MapKeys (map order again)
//
// Indirect calls (function values, interface methods) contribute no
// edges; detlint's lexical ban inside the cycle-domain packages is the
// backstop for those. See tools/analyzers/internal/flow.
//
// # Suppression
//
// `//shsim:nondeterministic-ok <reason>` on a function declaration
// excludes that function (body and callees) from taint propagation.
// The reason is mandatory — an unexplained suppression is itself a
// finding (rule "suppression") — and is the written record reviewers
// audit instead of the code.
package detflow

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/tools/analyzers/framework"
	"repro/tools/analyzers/internal/flow"
)

// FactKind is the fact table detflow exports: object key (function) →
// encoded flow.Taint the function transitively reaches.
const FactKind = "detflow.taint"

// Directives recognized by detflow.
const (
	DirEntry    = "cycle-entry"
	DirSuppress = "nondeterministic-ok"
)

var Analyzer = &framework.Analyzer{
	Name: "detflow",
	Doc: "interprocedural proof that cycle-domain entry points reach no nondeterminism source\n\n" +
		"Functions annotated //shsim:cycle-entry (step loops, runner cells) must not transitively call " +
		"wall clocks, the global rand source, map iteration, multi-case selects, or address-dependent " +
		"formatting, across package boundaries via exported facts.",
	Run: run,
}

func run(pass *framework.Pass) error {
	g := flow.BuildGraph(pass)

	// Directive hygiene: a detached annotation enforces nothing.
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, d := range flow.Misplaced(file, DirEntry, DirSuppress) {
			pass.ReportRule(d.Pos, "misplaced",
				"//shsim:%s must be the doc comment of a function declaration", d.Name)
		}
	}

	// Local sources per function, plus suppression marking.
	local := map[*types.Func][]flow.Taint{}
	suppressed := map[*types.Func]bool{}
	for _, fn := range g.Funcs {
		fd := g.Decl[fn]
		if d, ok := flow.FuncDirective(fd, DirSuppress); ok {
			if d.Arg == "" {
				pass.ReportRule(d.Pos, "suppression",
					"//shsim:nondeterministic-ok requires a written reason")
			} else {
				suppressed[fn] = true
			}
		}
		local[fn] = scanBody(pass, fd)
	}

	taints := flow.Propagate(g, local,
		func(callee *types.Func) (flow.Taint, bool) {
			if t, ok := intrinsic(callee); ok {
				return t, true
			}
			if v, ok := pass.Facts.LookupFunc(FactKind, callee); ok {
				if t, ok := flow.DecodeTaint(v); ok {
					return t, true
				}
			}
			return flow.Taint{}, false
		},
		func(fn *types.Func) bool { return suppressed[fn] })

	// Export every function's taint for dependent packages, and report
	// at the annotated entry points.
	for _, fn := range g.Funcs {
		t, tainted := taints[fn]
		if tainted {
			pass.Facts.Export(FactKind, framework.ObjectKey(fn), t.Encode())
		}
		fd := g.Decl[fn]
		if _, isEntry := flow.FuncDirective(fd, DirEntry); !isEntry {
			continue
		}
		if tainted {
			pass.ReportRule(fd.Name.Pos(), t.Rule,
				"cycle-domain entry %s reaches a nondeterminism source: %s (via %s)",
				flow.FuncName(fn), t.Detail, t.Chain)
		}
	}
	return nil
}

// scanBody collects the nondeterminism sources a function body contains
// directly, in source order.
func scanBody(pass *framework.Pass, fd *ast.FuncDecl) []flow.Taint {
	var out []flow.Taint
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					out = append(out, flow.Taint{Rule: "maprange",
						Detail: "range over map (iteration order is randomized per run)"})
				}
			}
		case *ast.SelectStmt:
			cases := 0
			for _, cc := range n.Body.List {
				if cl, ok := cc.(*ast.CommClause); ok && cl.Comm != nil {
					cases++
				}
			}
			if cases >= 2 {
				out = append(out, flow.Taint{Rule: "select",
					Detail: "select with multiple communication cases (runtime picks among ready cases pseudo-randomly)"})
			}
		case *ast.CallExpr:
			out = append(out, scanCall(info, n)...)
		}
		return true
	})
	return out
}

// scanCall classifies one call expression's direct sources: intrinsic
// callees and address-formatting arguments.
func scanCall(info *types.Info, call *ast.CallExpr) []flow.Taint {
	var out []flow.Taint
	// uintptr(ptr) conversion: the callee of a conversion is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr {
			if at := info.TypeOf(call.Args[0]); at != nil && pointerLike(at) {
				out = append(out, flow.Taint{Rule: "addrvalue",
					Detail: "uintptr conversion of a pointer (address-dependent value)"})
			}
		}
		return out
	}
	callee := flow.Callee(info, call)
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		for _, arg := range call.Args {
			if tv, ok := info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				// %%p is a literal "%p", not a verb.
				if strings.Contains(strings.ReplaceAll(constant.StringVal(tv.Value), "%%", ""), "%p") {
					out = append(out, flow.Taint{Rule: "addrformat",
						Detail: "fmt call formatting an address with %p"})
					break
				}
			}
		}
	}
	return out
}

func pointerLike(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// intrinsic classifies callees whose nondeterminism is modeled rather
// than derived: the standard library is never analyzed for facts.
func intrinsic(fn *types.Func) (flow.Taint, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return flow.Taint{}, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	switch pkg.Path() {
	case "time":
		if recv == nil {
			switch fn.Name() {
			case "Now", "Since", "Until":
				return flow.Taint{Rule: "wallclock", Chain: "time." + fn.Name(),
					Detail: "wall-clock read time." + fn.Name()}, true
			}
		}
	case "math/rand", "math/rand/v2":
		// Package-level functions draw from the process-seeded global
		// source; methods on an explicitly seeded *rand.Rand are fine.
		if recv == nil && fn.Name() != "New" && fn.Name() != "NewSource" &&
			fn.Name() != "NewPCG" && fn.Name() != "NewChaCha8" && fn.Name() != "NewZipf" {
			return flow.Taint{Rule: "globalrand", Chain: "rand." + fn.Name(),
				Detail: "global math/rand source rand." + fn.Name()}, true
		}
	case "reflect":
		if recv != nil && fn.Name() == "MapKeys" {
			return flow.Taint{Rule: "mapkeys", Chain: "reflect.Value.MapKeys",
				Detail: "reflect.Value.MapKeys (map iteration order)"}, true
		}
	}
	return flow.Taint{}, false
}

package detflow

import (
	"go/types"
	"strings"
	"testing"

	"repro/tools/analyzers/internal/analyzertest"
)

func deps() map[string]*types.Package {
	return map[string]*types.Package{
		"time":      analyzertest.Time(),
		"math/rand": analyzertest.Rand(),
		"fmt":       analyzertest.Fmt(),
		"reflect":   analyzertest.Reflect(),
	}
}

// TestReclaimBugCaughtInterprocedurally is the PR-1 reclaim bug in its
// disguised form: the map iteration lives in a helper package outside
// the cycle domain (where detlint's lexical ban does not apply), behind
// a wrapper, and still decides install order. detflow must carry the
// taint across both package boundary and wrapper to the annotated
// entry point, with the full call chain in the diagnostic.
func TestReclaimBugCaughtInterprocedurally(t *testing.T) {
	p := analyzertest.NewProject(deps())

	// The helper package: not a cycle-domain package name, so detlint
	// never looks at it.
	diags := p.Check(t, "repro/internal/fillutil", map[string]string{
		"ready.go": `package fillutil

// Ready harvests the completed fills. BUG: map iteration order decides
// the result order.
func Ready(fills map[uint64]uint64, now uint64) []uint64 {
	var out []uint64
	for line, ready := range fills {
		if ready <= now {
			out = append(out, line)
		}
	}
	return out
}
`}, Analyzer)
	if len(diags) != 0 {
		t.Fatalf("helper package has no entry points, want no diagnostics, got %v",
			analyzertest.Messages(diags))
	}

	diags = p.Check(t, "repro/internal/mem", map[string]string{
		"reclaim.go": `package mem

import "repro/internal/fillutil"

type hierarchy struct {
	fills    map[uint64]uint64
	installs []uint64
}

// harvest wraps the helper — one more frame between the entry point
// and the source.
func (h *hierarchy) harvest(now uint64) []uint64 {
	return fillutil.Ready(h.fills, now)
}

//shsim:cycle-entry
func (h *hierarchy) reclaim(now uint64) {
	h.installs = append(h.installs, h.harvest(now)...)
}
`}, Analyzer)
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic, got %v", analyzertest.Messages(diags))
	}
	d := diags[0]
	if d.Rule != "maprange" {
		t.Errorf("want rule maprange, got %q", d.Rule)
	}
	for _, want := range []string{"(*hierarchy).reclaim", "(*hierarchy).harvest", "Ready", "range over map"} {
		if !strings.Contains(d.Message, want) {
			t.Errorf("diagnostic missing %q: %s", want, d.Message)
		}
	}
}

// TestIntrinsicSourcesAttributed seeds one defect per intrinsic rule
// and checks each is caught at the entry with the right attribution.
func TestIntrinsicSourcesAttributed(t *testing.T) {
	cases := []struct {
		name string
		body string
		rule string
	}{
		{"wallclock", `func helper() { _ = time.Now() }`, "wallclock"},
		{"globalrand", `func helper() { _ = rand.Intn(8) }`, "globalrand"},
		{"mapkeys", `func helper() { _ = reflect.ValueOf(0).MapKeys() }`, "mapkeys"},
		{"addrformat", `func helper() { _ = fmt.Sprintf("%p", nil) }`, "addrformat"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := `package exec

import (
	"time"
	"math/rand"
	"fmt"
	"reflect"
)

var _ = time.Now
var _ = rand.Intn
var _ = fmt.Sprintf
var _ = reflect.ValueOf

` + tc.body + `

//shsim:cycle-entry
func step() { helper() }
`
			diags := analyzertest.Check(t, "repro/internal/exec",
				map[string]string{"step.go": src}, deps(), Analyzer)
			if len(diags) != 1 {
				t.Fatalf("want 1 diagnostic, got %v", analyzertest.Messages(diags))
			}
			if diags[0].Rule != tc.rule {
				t.Errorf("want rule %q, got %q (%s)", tc.rule, diags[0].Rule, diags[0].Message)
			}
			if !strings.Contains(diags[0].Message, "step → helper") {
				t.Errorf("chain missing from %q", diags[0].Message)
			}
		})
	}
}

func TestStructuralSources(t *testing.T) {
	src := `package smt

func pickReady(a, b chan int) int {
	select { // multi-case select: runtime picks among ready cases
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func addrOf(p *int) uintptr {
	return uintptr(unsafePtr(p))
}

func unsafePtr(p *int) uintptr { return uintptr(unsafePointerOf(p)) }

//shsim:cycle-entry
func stepSelect(a, b chan int) int { return pickReady(a, b) }

//shsim:cycle-entry
func stepAddr(p *int) uintptr { return addrOf(p) }
`
	// unsafePointerOf needs unsafe; declare it in a second file.
	unsafeSrc := `package smt

import "unsafe"

func unsafePointerOf(p *int) unsafe.Pointer { return unsafe.Pointer(p) }
`
	diags := analyzertest.Check(t, "repro/internal/smt",
		map[string]string{"step.go": src, "unsafe.go": unsafeSrc}, deps(), Analyzer)
	rules := map[string]bool{}
	for _, d := range diags {
		rules[d.Rule] = true
	}
	if len(diags) != 2 || !rules["select"] || !rules["addrvalue"] {
		t.Fatalf("want one select and one addrvalue diagnostic, got %v",
			analyzertest.Messages(diags))
	}
}

func TestSingleReadyChannelNotFlagged(t *testing.T) {
	src := `package exec

//shsim:cycle-entry
func step(a chan int) int {
	select { // single communication case: deterministic
	case v := <-a:
		return v
	}
}
`
	diags := analyzertest.Check(t, "repro/internal/exec",
		map[string]string{"step.go": src}, deps(), Analyzer)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics for single-case select, got %v",
			analyzertest.Messages(diags))
	}
}

// TestSuppressionStopsPropagation: a //shsim:nondeterministic-ok with a
// written reason licenses the function and everything below it.
func TestSuppressionStopsPropagation(t *testing.T) {
	src := `package exec

import "time"

//shsim:nondeterministic-ok host telemetry only; never feeds simulated state
func wallTelemetry() time.Time { return time.Now() }

//shsim:cycle-entry
func step() { _ = wallTelemetry() }
`
	diags := analyzertest.Check(t, "repro/internal/exec",
		map[string]string{"step.go": src}, deps(), Analyzer)
	if len(diags) != 0 {
		t.Fatalf("want suppression to license the subtree, got %v",
			analyzertest.Messages(diags))
	}
}

func TestReasonlessSuppressionIsAFinding(t *testing.T) {
	src := `package exec

import "time"

//shsim:nondeterministic-ok
func wallTelemetry() time.Time { return time.Now() }

//shsim:cycle-entry
func step() { _ = wallTelemetry() }
`
	diags := analyzertest.Check(t, "repro/internal/exec",
		map[string]string{"step.go": src}, deps(), Analyzer)
	// The empty suppression is itself reported AND does not license the
	// subtree, so the wallclock taint still reaches the entry.
	rules := map[string]bool{}
	for _, d := range diags {
		rules[d.Rule] = true
	}
	if len(diags) != 2 || !rules["suppression"] || !rules["wallclock"] {
		t.Fatalf("want suppression + wallclock diagnostics, got %v",
			analyzertest.Messages(diags))
	}
}

func TestMisplacedDirective(t *testing.T) {
	src := `package exec

//shsim:cycle-entry
var notAFunction int

func step() {}
`
	diags := analyzertest.Check(t, "repro/internal/exec",
		map[string]string{"step.go": src}, deps(), Analyzer)
	if len(diags) != 1 || diags[0].Rule != "misplaced" {
		t.Fatalf("want one misplaced diagnostic, got %v", analyzertest.Messages(diags))
	}
}

// TestSeededRandNotFlagged: methods on an explicitly seeded source are
// the sanctioned randomness; only the package-level global source is a
// taint.
func TestSeededRandNotFlagged(t *testing.T) {
	src := `package exec

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s
}

//shsim:cycle-entry
func step(r *rng) uint64 { return r.next() }
`
	diags := analyzertest.Check(t, "repro/internal/exec",
		map[string]string{"step.go": src}, deps(), Analyzer)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics for threaded seeded rng, got %v",
			analyzertest.Messages(diags))
	}
}

// TestFactExportCoversNonEntryFunctions: the helper package exports
// taints for its tainted functions even though it reports nothing — the
// dependent package's report depends on it.
func TestFactExportCoversNonEntryFunctions(t *testing.T) {
	p := analyzertest.NewProject(deps())
	p.Check(t, "repro/internal/util", map[string]string{
		"util.go": `package util

import "time"

func Stamp() int64 { return now() }

func now() int64 { return int64(nowTime()) }

func nowTime() uint64 { _ = time.Now(); return 0 }
`}, Analyzer)
	for _, fn := range []string{"repro/internal/util.Stamp", "repro/internal/util.now", "repro/internal/util.nowTime"} {
		if _, ok := p.Facts().Lookup(FactKind, fn); !ok {
			t.Errorf("no exported taint fact for %s", fn)
		}
	}
}

// Package flow is the shared substrate of the interprocedural
// analyzers (detflow, barrierguard): `//shsim:` directive parsing, a
// per-package static call graph, and a bottom-up taint propagation
// over it. Cross-package edges are not represented here — the
// analyzers translate them to framework facts (exported where the
// callee lives, imported where the caller lives), which is what makes
// the whole-repo argument compose out of per-package passes.
//
// The call graph is deliberately static: a call edge exists only where
// the callee resolves to a concrete *types.Func (direct calls, method
// calls on concrete receivers, go/defer statements, calls inside
// function literals — attributed to the enclosing declaration).
// Indirect calls through function values and interface methods
// contribute no edges; the lexical analyzers (detlint) keep covering
// the cycle-domain packages themselves, so the gap is the documented
// trade for a zero-dependency analyzer suite.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/analyzers/framework"
)

// Directive is one parsed `//shsim:<name> <argument>` annotation.
type Directive struct {
	Name string // e.g. "cycle-entry", "noalloc", "nondeterministic-ok"
	Arg  string // rest of the line, trimmed; "" when absent
	Pos  token.Pos
}

const prefix = "//shsim:"

// Directives parses the `//shsim:` annotations of a comment group.
func Directives(doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, prefix)
		if !ok {
			continue
		}
		name, arg, _ := strings.Cut(text, " ")
		out = append(out, Directive{Name: strings.TrimSpace(name), Arg: strings.TrimSpace(arg), Pos: c.Pos()})
	}
	return out
}

// FuncDirective returns the named directive of a function declaration,
// or false.
func FuncDirective(fd *ast.FuncDecl, name string) (Directive, bool) {
	for _, d := range Directives(fd.Doc) {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// Misplaced returns the positions of `//shsim:<name>` comments (for any
// of the given names) that are NOT the doc comment of a function
// declaration — annotations only mean something on functions, and a
// detached one silently enforces nothing.
func Misplaced(file *ast.File, names ...string) []Directive {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	attached := map[*ast.CommentGroup]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok && fd.Doc != nil {
			attached[fd.Doc] = true
		}
		return true
	})
	var out []Directive
	for _, cg := range file.Comments {
		if attached[cg] {
			continue
		}
		for _, d := range Directives(cg) {
			if want[d.Name] {
				out = append(out, d)
			}
		}
	}
	return out
}

// Call is one resolved static call site.
type Call struct {
	Callee *types.Func
	Pos    token.Pos
}

// Graph is the package-local static call graph.
type Graph struct {
	// Funcs lists the package's function declarations in file order —
	// the deterministic iteration order for everything below.
	Funcs []*types.Func
	// Decl maps a function object to its declaration.
	Decl map[*types.Func]*ast.FuncDecl
	// Calls maps a function to its resolved call sites, in source order.
	Calls map[*types.Func][]Call
}

// BuildGraph constructs the call graph of the pass's package. Test
// files are excluded: the determinism and quantum contracts are about
// simulation code, and tests time themselves freely.
func BuildGraph(pass *framework.Pass) *Graph {
	g := &Graph{
		Decl:  map[*types.Func]*ast.FuncDecl{},
		Calls: map[*types.Func][]Call{},
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Funcs = append(g.Funcs, fn)
			g.Decl[fn] = fd
			var calls []Call
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := Callee(pass.TypesInfo, call); callee != nil {
					calls = append(calls, Call{Callee: callee, Pos: call.Pos()})
				}
				return true
			})
			g.Calls[fn] = calls
		}
	}
	return g
}

// Callee resolves a call expression to the concrete function it
// invokes, or nil for indirect calls, conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// FuncName renders a function for diagnostics: "Step" for package-level
// functions, "(*Machine).Step" for methods.
func FuncName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	recv := sig.Recv().Type()
	star := ""
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
		star = "*"
	}
	name := recv.String()
	if named, ok := recv.(*types.Named); ok {
		name = named.Obj().Name()
	}
	if star != "" {
		return "(*" + name + ")." + fn.Name()
	}
	return name + "." + fn.Name()
}

// Taint is one propagated property: which rule fired, the call chain
// that carries it to the function under report, and the human detail of
// the originating construct.
type Taint struct {
	Rule   string
	Chain  string // "caller → callee → …", innermost last
	Detail string
}

// Encode flattens a taint for a fact value; Decode inverts it.
func (t Taint) Encode() string { return t.Rule + "\x1f" + t.Chain + "\x1f" + t.Detail }

// DecodeTaint parses a fact value written by Taint.Encode.
func DecodeTaint(s string) (Taint, bool) {
	parts := strings.SplitN(s, "\x1f", 3)
	if len(parts) != 3 {
		return Taint{}, false
	}
	return Taint{Rule: parts[0], Chain: parts[1], Detail: parts[2]}, true
}

// Propagate computes, for every function in the graph, the first taint
// it transitively reaches. local gives the taints originating inside a
// function's own body (source order); external classifies callees that
// are not declared in this package (intrinsic sources, imported facts).
// stop marks functions whose contents are licensed (suppressed or
// structurally privileged): they contribute no taint to their callers.
// Cycles are handled by treating in-progress functions as clean — a
// recursive cycle cannot introduce a source that no function body
// contains.
func Propagate(g *Graph, local map[*types.Func][]Taint,
	external func(*types.Func) (Taint, bool), stop func(*types.Func) bool) map[*types.Func]Taint {

	result := map[*types.Func]Taint{}
	state := map[*types.Func]int{} // 0 unvisited, 1 in progress, 2 done
	var visit func(fn *types.Func) (Taint, bool)
	visit = func(fn *types.Func) (Taint, bool) {
		switch state[fn] {
		case 1:
			return Taint{}, false
		case 2:
			t, ok := result[fn]
			return t, ok
		}
		state[fn] = 1
		defer func() { state[fn] = 2 }()
		if stop != nil && stop(fn) {
			return Taint{}, false
		}
		if ts := local[fn]; len(ts) > 0 {
			t := ts[0]
			if t.Chain == "" {
				t.Chain = FuncName(fn)
			}
			result[fn] = t
			return t, true
		}
		for _, call := range g.Calls[fn] {
			var t Taint
			var tainted bool
			if _, isLocal := g.Decl[call.Callee]; isLocal {
				t, tainted = visit(call.Callee)
			} else if external != nil {
				t, tainted = external(call.Callee)
			}
			if tainted {
				t.Chain = FuncName(fn) + " → " + t.Chain
				result[fn] = t
				return t, true
			}
		}
		return Taint{}, false
	}
	for _, fn := range g.Funcs {
		visit(fn)
	}
	return result
}

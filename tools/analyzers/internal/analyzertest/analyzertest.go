// Package analyzertest type-checks small fixture sources against
// synthesized dependency packages and runs analyzers over them
// in-process. The synthesized packages exist because these tests run
// offline: go/importer cannot load real export data for "time" or
// "math/rand" without invoking the build system, and the fixtures only
// need the handful of names the analyzers match on.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"

	"repro/tools/analyzers/framework"
)

// Check parses and type-checks the given files (name → source) as one
// package with the given import path, resolving imports from deps, and
// returns the diagnostics of the analyzers in positional order.
func Check(t *testing.T, importPath string, files map[string]string,
	deps map[string]*types.Package, analyzers ...*framework.Analyzer) []framework.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var parsed []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, files[name], parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		parsed = append(parsed, f)
	}
	conf := &types.Config{Importer: mapImporter(deps)}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", importPath, err)
	}
	diags, err := framework.Analyze(importPath, fset, parsed, pkg, info, analyzers...)
	if err != nil {
		t.Fatalf("analyzing fixture %s: %v", importPath, err)
	}
	return diags
}

type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("fixture import %q not stubbed", path)
}

// FuncsPackage synthesizes a complete package exporting the named
// niladic functions — enough for analyzers that match on selector
// names rather than signatures.
func FuncsPackage(path, name string, funcs ...string) *types.Package {
	pkg := types.NewPackage(path, name)
	for _, fn := range funcs {
		sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
		pkg.Scope().Insert(types.NewFunc(token.NoPos, pkg, fn, sig))
	}
	pkg.MarkComplete()
	return pkg
}

// Time stubs the "time" package with the wall-clock readers detlint
// forbids, with realistic shapes: Now() Time, Since/Until(Time) Duration.
func Time() *types.Package {
	pkg := types.NewPackage("time", "time")
	timeObj := types.NewTypeName(token.NoPos, pkg, "Time", nil)
	timeT := types.NewNamed(timeObj, types.NewStruct(nil, nil), nil)
	durObj := types.NewTypeName(token.NoPos, pkg, "Duration", nil)
	durT := types.NewNamed(durObj, types.Typ[types.Int64], nil)
	pkg.Scope().Insert(timeObj)
	pkg.Scope().Insert(durObj)
	result := func(t types.Type) *types.Tuple {
		return types.NewTuple(types.NewVar(token.NoPos, pkg, "", t))
	}
	param := func(t types.Type) *types.Tuple {
		return types.NewTuple(types.NewVar(token.NoPos, pkg, "t", t))
	}
	pkg.Scope().Insert(types.NewFunc(token.NoPos, pkg, "Now",
		types.NewSignatureType(nil, nil, nil, nil, result(timeT), false)))
	for _, fn := range []string{"Since", "Until"} {
		pkg.Scope().Insert(types.NewFunc(token.NoPos, pkg, fn,
			types.NewSignatureType(nil, nil, nil, param(timeT), result(durT), false)))
	}
	pkg.MarkComplete()
	return pkg
}

// Rand stubs "math/rand" with Intn(int) int.
func Rand() *types.Package {
	pkg := types.NewPackage("math/rand", "rand")
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, pkg, "n", types.Typ[types.Int])),
		types.NewTuple(types.NewVar(token.NoPos, pkg, "", types.Typ[types.Int])), false)
	pkg.Scope().Insert(types.NewFunc(token.NoPos, pkg, "Intn", sig))
	pkg.MarkComplete()
	return pkg
}

// Metrics stubs repro/internal/metrics with a Registry struct carrying
// one uint64 counter field, matching what metricsguard keys on.
func Metrics() *types.Package {
	pkg := types.NewPackage("repro/internal/metrics", "metrics")
	obj := types.NewTypeName(token.NoPos, pkg, "Registry", nil)
	fields := []*types.Var{
		types.NewField(token.NoPos, pkg, "Hides", types.Typ[types.Uint64], false),
		types.NewField(token.NoPos, pkg, "Faults", types.Typ[types.Uint64], false),
	}
	types.NewNamed(obj, types.NewStruct(fields, nil), nil)
	pkg.Scope().Insert(obj)
	pkg.MarkComplete()
	return pkg
}

// Messages flattens diagnostics to "analyzer: message" strings for
// simple substring assertions.
func Messages(diags []framework.Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
	}
	return out
}

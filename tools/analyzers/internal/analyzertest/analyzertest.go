// Package analyzertest type-checks small fixture sources against
// synthesized dependency packages and runs analyzers over them
// in-process. The synthesized packages exist because these tests run
// offline: go/importer cannot load real export data for "time" or
// "math/rand" without invoking the build system, and the fixtures only
// need the handful of names the analyzers match on.
//
// For interprocedural analyzers, a Project threads one FactSet through
// a sequence of fixture packages checked in dependency order: facts
// exported while checking package A are visible when checking a later
// package that imports A, exactly as the unitchecker feeds dependency
// vetx files to dependent units.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"

	"repro/tools/analyzers/framework"
)

// Project accumulates type-checked fixture packages and the facts the
// analyzers exported over them.
type Project struct {
	fset  *token.FileSet
	deps  map[string]*types.Package
	facts *framework.FactSet
}

// NewProject starts a fixture project whose packages may import the
// given stub dependencies (and, transitively, each other).
func NewProject(deps map[string]*types.Package) *Project {
	all := map[string]*types.Package{"unsafe": types.Unsafe}
	for path, pkg := range deps {
		all[path] = pkg
	}
	return &Project{
		fset:  token.NewFileSet(),
		deps:  all,
		facts: framework.NewFactSet(),
	}
}

// Facts exposes the project's accumulated fact set for assertions.
func (p *Project) Facts() *framework.FactSet { return p.facts }

// Check parses and type-checks the given files (name → source) as one
// package with the given import path, resolving imports from the
// project's packages, runs the analyzers with the accumulated facts,
// registers the package for later fixtures to import, and returns the
// diagnostics in positional order.
func (p *Project) Check(t *testing.T, importPath string, files map[string]string,
	analyzers ...*framework.Analyzer) []framework.Diagnostic {
	t.Helper()
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var parsed []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(p.fset, name, files[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		parsed = append(parsed, f)
	}
	conf := &types.Config{Importer: mapImporter(p.deps)}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(importPath, p.fset, parsed, info)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", importPath, err)
	}
	diags, err := framework.Analyze(importPath, p.fset, parsed, pkg, info, p.facts, analyzers...)
	if err != nil {
		t.Fatalf("analyzing fixture %s: %v", importPath, err)
	}
	p.deps[importPath] = pkg
	return diags
}

// Check is the single-package convenience: one fixture package, no
// cross-package facts.
func Check(t *testing.T, importPath string, files map[string]string,
	deps map[string]*types.Package, analyzers ...*framework.Analyzer) []framework.Diagnostic {
	t.Helper()
	return NewProject(deps).Check(t, importPath, files, analyzers...)
}

type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("fixture import %q not stubbed", path)
}

// FuncsPackage synthesizes a complete package exporting the named
// niladic functions — enough for analyzers that match on selector
// names rather than signatures.
func FuncsPackage(path, name string, funcs ...string) *types.Package {
	pkg := types.NewPackage(path, name)
	for _, fn := range funcs {
		sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
		pkg.Scope().Insert(types.NewFunc(token.NoPos, pkg, fn, sig))
	}
	pkg.MarkComplete()
	return pkg
}

// Time stubs the "time" package with the wall-clock readers detlint
// forbids, with realistic shapes: Now() Time, Since/Until(Time) Duration.
func Time() *types.Package {
	pkg := types.NewPackage("time", "time")
	timeObj := types.NewTypeName(token.NoPos, pkg, "Time", nil)
	timeT := types.NewNamed(timeObj, types.NewStruct(nil, nil), nil)
	durObj := types.NewTypeName(token.NoPos, pkg, "Duration", nil)
	durT := types.NewNamed(durObj, types.Typ[types.Int64], nil)
	pkg.Scope().Insert(timeObj)
	pkg.Scope().Insert(durObj)
	result := func(t types.Type) *types.Tuple {
		return types.NewTuple(types.NewVar(token.NoPos, pkg, "", t))
	}
	param := func(t types.Type) *types.Tuple {
		return types.NewTuple(types.NewVar(token.NoPos, pkg, "t", t))
	}
	pkg.Scope().Insert(types.NewFunc(token.NoPos, pkg, "Now",
		types.NewSignatureType(nil, nil, nil, nil, result(timeT), false)))
	for _, fn := range []string{"Since", "Until"} {
		pkg.Scope().Insert(types.NewFunc(token.NoPos, pkg, fn,
			types.NewSignatureType(nil, nil, nil, param(timeT), result(durT), false)))
	}
	pkg.MarkComplete()
	return pkg
}

// Rand stubs "math/rand" with Intn(int) int.
func Rand() *types.Package {
	pkg := types.NewPackage("math/rand", "rand")
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, pkg, "n", types.Typ[types.Int])),
		types.NewTuple(types.NewVar(token.NoPos, pkg, "", types.Typ[types.Int])), false)
	pkg.Scope().Insert(types.NewFunc(token.NoPos, pkg, "Intn", sig))
	pkg.MarkComplete()
	return pkg
}

// Fmt stubs "fmt" with the printf family the analyzers inspect for
// address-formatting verbs: Sprintf/Errorf (format-first) and Printf.
func Fmt() *types.Package {
	pkg := types.NewPackage("fmt", "fmt")
	anyT := types.Universe.Lookup("any").Type()
	args := types.NewVar(token.NoPos, pkg, "args", types.NewSlice(anyT))
	format := types.NewVar(token.NoPos, pkg, "format", types.Typ[types.String])
	result := func(t types.Type) *types.Tuple {
		if t == nil {
			return nil
		}
		return types.NewTuple(types.NewVar(token.NoPos, pkg, "", t))
	}
	errorT := types.Universe.Lookup("error").Type()
	for name, res := range map[string]types.Type{
		"Sprintf": types.Typ[types.String],
		"Errorf":  errorT,
		"Printf":  nil,
	} {
		pkg.Scope().Insert(types.NewFunc(token.NoPos, pkg, name,
			types.NewSignatureType(nil, nil, nil, types.NewTuple(format, args), result(res), true)))
	}
	pkg.MarkComplete()
	return pkg
}

// Reflect stubs "reflect" with ValueOf and the Value.MapKeys method
// detlint forbids in cycle-domain code.
func Reflect() *types.Package {
	pkg := types.NewPackage("reflect", "reflect")
	valObj := types.NewTypeName(token.NoPos, pkg, "Value", nil)
	valT := types.NewNamed(valObj, types.NewStruct(nil, nil), nil)
	recv := types.NewVar(token.NoPos, pkg, "v", valT)
	mapKeys := types.NewFunc(token.NoPos, pkg, "MapKeys",
		types.NewSignatureType(recv, nil, nil, nil,
			types.NewTuple(types.NewVar(token.NoPos, pkg, "", types.NewSlice(valT))), false))
	valT.AddMethod(mapKeys)
	pkg.Scope().Insert(valObj)
	anyT := types.Universe.Lookup("any").Type()
	pkg.Scope().Insert(types.NewFunc(token.NoPos, pkg, "ValueOf",
		types.NewSignatureType(nil, nil, nil,
			types.NewTuple(types.NewVar(token.NoPos, pkg, "i", anyT)),
			types.NewTuple(types.NewVar(token.NoPos, pkg, "", valT)), false)))
	pkg.MarkComplete()
	return pkg
}

// Metrics stubs repro/internal/metrics with the two pointer-dereferenced
// observability types metricsguard proves nil guards for: Registry and
// the PR-8 FineHist.
func Metrics() *types.Package {
	pkg := types.NewPackage("repro/internal/metrics", "metrics")

	fhObj := types.NewTypeName(token.NoPos, pkg, "FineHist", nil)
	fhFields := []*types.Var{
		types.NewField(token.NoPos, pkg, "Count", types.Typ[types.Uint64], false),
		types.NewField(token.NoPos, pkg, "Max", types.Typ[types.Uint64], false),
	}
	fhT := types.NewNamed(fhObj, types.NewStruct(fhFields, nil), nil)
	fhRecv := types.NewVar(token.NoPos, pkg, "h", types.NewPointer(fhT))
	fhT.AddMethod(types.NewFunc(token.NoPos, pkg, "Observe",
		types.NewSignatureType(fhRecv, nil, nil,
			types.NewTuple(types.NewVar(token.NoPos, pkg, "v", types.Typ[types.Uint64])), nil, false)))
	pkg.Scope().Insert(fhObj)

	obj := types.NewTypeName(token.NoPos, pkg, "Registry", nil)
	fields := []*types.Var{
		types.NewField(token.NoPos, pkg, "Hides", types.Typ[types.Uint64], false),
		types.NewField(token.NoPos, pkg, "Faults", types.Typ[types.Uint64], false),
		types.NewField(token.NoPos, pkg, "Sojourn", fhT, false),
	}
	types.NewNamed(obj, types.NewStruct(fields, nil), nil)
	pkg.Scope().Insert(obj)
	pkg.MarkComplete()
	return pkg
}

// Messages flattens diagnostics to "analyzer: message" strings for
// simple substring assertions (rule attributions included when set).
func Messages(diags []framework.Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		if d.Rule != "" {
			out[i] = d.String()
		} else {
			out[i] = fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		}
	}
	return out
}

package detlint

import (
	"strings"
	"testing"

	"go/types"

	"repro/tools/analyzers/internal/analyzertest"
)

func deps() map[string]*types.Package {
	return map[string]*types.Package{
		"time":      analyzertest.Time(),
		"math/rand": analyzertest.Rand(),
	}
}

// reclaimSrc is a reduction of the nondeterminism bug fixed in PR 1:
// mem.Hierarchy.reclaim iterated the in-flight fill map directly, so
// cache lines were installed — and eviction victims chosen — in map
// iteration order, which differs across runs with identical seeds.
const reclaimSrc = `package mem

type fill struct {
	line  uint64
	ready uint64
}

type hierarchy struct {
	fills map[uint64]fill
}

func (h *hierarchy) install(line uint64) {}

// reclaim installs every completed fill. BUG: map iteration order
// decides install order, and install order decides evictions.
func (h *hierarchy) reclaim(now uint64) {
	for line, f := range h.fills {
		if f.ready <= now {
			h.install(line)
			delete(h.fills, line)
		}
	}
}
`

func TestReclaimBugReduction(t *testing.T) {
	diags := analyzertest.Check(t, "repro/internal/mem",
		map[string]string{"reclaim.go": reclaimSrc}, deps(), Analyzer)
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic for the reclaim reduction, got %d: %v",
			len(diags), analyzertest.Messages(diags))
	}
	if !strings.Contains(diags[0].Message, "range over map") {
		t.Fatalf("want range-over-map diagnostic, got %q", diags[0].Message)
	}
}

const violationsSrc = `package exec

import (
	"time"
	"math/rand"
)

func step(pending map[int]bool) int {
	n := 0
	for id := range pending { // violation: map range
		n += id
	}
	start := time.Now()      // violation: wall clock
	_ = time.Since(start)    // violation: wall clock
	return n + rand.Intn(8)  // import itself is the violation
}
`

func TestFlagsEveryViolationClass(t *testing.T) {
	diags := analyzertest.Check(t, "repro/internal/exec",
		map[string]string{"step.go": violationsSrc}, deps(), Analyzer)
	msgs := analyzertest.Messages(diags)
	want := []string{"math/rand", "range over map", "time.Now", "time.Since"}
	if len(diags) != len(want) {
		t.Fatalf("want %d diagnostics, got %d: %v", len(want), len(diags), msgs)
	}
	for _, w := range want {
		found := false
		for _, m := range msgs {
			if strings.Contains(m, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic mentions %q in %v", w, msgs)
		}
	}
}

func TestNonCycleDomainPackagesExempt(t *testing.T) {
	// The same source is fine outside the cycle domain: analysis
	// packages may use maps and clocks freely.
	for _, path := range []string{
		"repro/internal/profile", // under internal/, not a cycle-domain name
		"repro/exec",             // cycle-domain name, not under internal/
	} {
		diags := analyzertest.Check(t, path,
			map[string]string{"step.go": violationsSrc}, deps(), Analyzer)
		if len(diags) != 0 {
			t.Errorf("%s: want no diagnostics outside the cycle domain, got %v",
				path, analyzertest.Messages(diags))
		}
	}
}

func TestTestFilesExempt(t *testing.T) {
	diags := analyzertest.Check(t, "repro/internal/sched", map[string]string{
		"sched.go":      "package sched\n",
		"sched_test.go": strings.Replace(violationsSrc, "package exec", "package sched", 1),
	}, deps(), Analyzer)
	if len(diags) != 0 {
		t.Fatalf("want test files exempt, got %v", analyzertest.Messages(diags))
	}
}

func TestBenignConstructsNotFlagged(t *testing.T) {
	src := `package cpu

import "time"

func ok(xs []int, ch chan int, d time.Duration) int {
	s := 0
	for _, x := range xs { // slice range is fine
		s += x
	}
	for x := range ch { // channel range is fine
		s += x
	}
	_ = d * 2 // using time.Duration arithmetic is fine
	return s
}
`
	diags := analyzertest.Check(t, "repro/internal/cpu",
		map[string]string{"cpu.go": src}, map[string]*types.Package{
			"time": durationTime(),
		}, Analyzer)
	if len(diags) != 0 {
		t.Fatalf("want no diagnostics, got %v", analyzertest.Messages(diags))
	}
}

// durationTime stubs "time" with just a Duration type, enough for the
// benign-constructs fixture.
func durationTime() *types.Package {
	pkg := types.NewPackage("time", "time")
	obj := types.NewTypeName(0, pkg, "Duration", nil)
	types.NewNamed(obj, types.Typ[types.Int64], nil)
	pkg.Scope().Insert(obj)
	pkg.MarkComplete()
	return pkg
}

// TestCycleAdjacentFileChecked pins the file-level extension of the
// contract: internal/bincfg is exempt as a package (its dominator
// analysis ranges over maps legitimately), but blockplan.go feeds the
// block engine's run table and must obey the cycle-domain rules.
func TestCycleAdjacentFileChecked(t *testing.T) {
	const planSrc = `package bincfg

func runs(blocks map[int]int) []int {
	var out []int
	for start := range blocks { // violation: run order feeds the CPU
		out = append(out, start)
	}
	return out
}
`
	const domSrc = `package bincfg

func frontier(doms map[int]int) int {
	n := 0
	for range doms { // fine: analysis-only, order-insensitive
		n++
	}
	return n
}
`
	const sbSrc = `package bincfg

func heads(profile map[int]uint64) []int {
	var out []int
	for pc := range profile { // violation: trace selection feeds the CPU
		out = append(out, pc)
	}
	return out
}
`
	diags := analyzertest.Check(t, "repro/internal/bincfg", map[string]string{
		"blockplan.go":  planSrc,
		"superblock.go": sbSrc,
		"dom.go":        domSrc,
	}, deps(), Analyzer)
	if len(diags) != 2 {
		t.Fatalf("want exactly 2 diagnostics (blockplan.go and superblock.go, not dom.go), got %d: %v",
			len(diags), analyzertest.Messages(diags))
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "range over map") {
			t.Fatalf("want range-over-map diagnostic, got %q", d.Message)
		}
	}
}

func TestSMTPackageInCycleDomain(t *testing.T) {
	diags := analyzertest.Check(t, "repro/internal/smt",
		map[string]string{"step.go": strings.Replace(violationsSrc, "package exec", "package smt", 1)},
		deps(), Analyzer)
	if len(diags) != 4 {
		t.Fatalf("want 4 diagnostics in internal/smt, got %d: %v",
			len(diags), analyzertest.Messages(diags))
	}
}

// TestServicePackageInCycleDomain pins the PR-8 extension: the open-loop
// service harness draws arrivals from the scenario's seeded rng and its
// sojourn histograms must replay byte-identically, so internal/service
// carries the full determinism contract.
func TestServicePackageInCycleDomain(t *testing.T) {
	diags := analyzertest.Check(t, "repro/internal/service",
		map[string]string{"step.go": strings.Replace(violationsSrc, "package exec", "package service", 1)},
		deps(), Analyzer)
	if len(diags) != 4 {
		t.Fatalf("want 4 diagnostics in internal/service, got %d: %v",
			len(diags), analyzertest.Messages(diags))
	}
}

func TestInCycleDomain(t *testing.T) {
	cases := map[string]bool{
		"repro/internal/mem":     true,
		"repro/internal/cpu":     true,
		"repro/internal/exec":    true,
		"repro/internal/smt":     true,
		"repro/internal/sched":   true,
		"repro/internal/pebs":    true,
		"repro/internal/service": true,
		"other/internal/mem":     true, // any module's internal cycle domain
		"repro/internal/profile": false,
		"repro/internal/mem/sub": false, // sub isn't a cycle-domain name
		"repro/mem":              false, // not under internal/
		"mem":                    false,
		"repro/internal":         false,
		"repro/tools/analyzers":  false,
	}
	for path, want := range cases {
		if got := inCycleDomain(path); got != want {
			t.Errorf("inCycleDomain(%q) = %v, want %v", path, got, want)
		}
	}
}

// Package detlint enforces the repository's determinism contract in
// cycle-domain packages (internal/{mem,cpu,exec,smt,sched,pebs,machine,service}):
// every simulated run with the same seed must be bit-identical, so those
// packages must not iterate maps in an order-sensitive way, read wall
// clocks, or draw from the global (process-seeded) random source.
//
// A few individual files outside those packages also feed simulated
// state — internal/bincfg/blockplan.go computes the block-engine run
// table the CPU retires from — and are held to the same rules by file
// name (see cycleAdjacent), without dragging their whole package (which
// may legitimately use maps for analysis) into the contract.
//
// The rule set is deliberately blunt — each construct it flags has
// caused (or would cause) a real nondeterminism bug:
//
//   - range over a map: map iteration order is randomized per run. The
//     PR-1 reclaim bug was exactly this — cache fills were installed in
//     map-iteration order, so eviction decisions differed across runs
//     with identical seeds. Iterate a sorted slice instead (see
//     internal/mem/fills.go).
//   - time.Now / time.Since / time.Until: wall-clock reads leak host
//     timing into the cycle domain. Simulated time is the only clock.
//   - importing math/rand or math/rand/v2: the global source is seeded
//     per process. Randomness must come from the scenario's explicitly
//     seeded generator, threaded in by the caller.
//   - address-dependent values: a %p fmt verb, reflect.Value.MapKeys,
//     or sorting a slice of pointers (the classic "harvest map keys,
//     sort them" pattern with pointer keys orders by allocation
//     address — stable within a run, different across runs).
//
// Test files are exempt: tests may time themselves and build throwaway
// maps without affecting simulation results.
//
// Diagnostics are rule-attributed: randimport, maprange, wallclock,
// addrformat, mapkeys, ptrsort.
package detlint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path"
	"path/filepath"
	"strings"

	"repro/tools/analyzers/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "detlint",
	Doc: "forbid nondeterminism sources (map iteration, wall clocks, global rand, address-dependent values) in cycle-domain packages\n\n" +
		"Applies to packages under internal/ whose name is one of mem, cpu, exec, smt, sched, pebs, machine, service, " +
		"plus individually listed cycle-adjacent files (internal/bincfg/{blockplan,superblock}.go).",
	Run: run,
}

// cycleDomain lists the package base names under internal/ whose
// computations feed simulated state. Keep in sync with ARCHITECTURE.md
// §9 and the determinism test matrix.
var cycleDomain = map[string]bool{
	"mem":     true,
	"cpu":     true,
	"exec":    true,
	"smt":     true,
	"sched":   true,
	"pebs":    true,
	"machine": true,
	"service": true, // open-loop arrivals + admission queue feed sojourn histograms
}

// cycleAdjacent lists individual files, keyed by package base name under
// internal/, that compute inputs to simulated state from inside packages
// that are otherwise exempt. bincfg is an analysis package — dom.go
// legitimately ranges over maps while building dominator sets — but
// blockplan.go derives the block-engine run table cpu.RunBlock retires
// from, so that one file carries the full determinism contract. The same
// holds for superblock.go, which derives the trace specs the superblock
// tier executes — its predicted-path selection must not depend on map
// iteration order over profile edges.
var cycleAdjacent = map[string]map[string]bool{
	"bincfg": {
		"blockplan.go":  true,
		"superblock.go": true,
	},
}

func packageBase(importPath string) (base string, underInternal bool) {
	base = importPath
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return base, strings.Contains(importPath+"/", "/internal/")
}

func inCycleDomain(importPath string) bool {
	base, internal := packageBase(importPath)
	return internal && cycleDomain[base]
}

// adjacentFiles returns the set of file base names in this package that
// are individually held to the determinism contract, or nil if none.
func adjacentFiles(importPath string) map[string]bool {
	base, internal := packageBase(importPath)
	if !internal {
		return nil
	}
	return cycleAdjacent[base]
}

func run(pass *framework.Pass) error {
	full := inCycleDomain(pass.ImportPath)
	adjacent := adjacentFiles(pass.ImportPath)
	if !full && adjacent == nil {
		return nil
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !full && !adjacent[path.Base(filepath.ToSlash(name))] {
			continue
		}
		checkFile(pass, file)
	}
	return nil
}

func checkFile(pass *framework.Pass, file *ast.File) {
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path == "math/rand" || path == "math/rand/v2" {
			pass.ReportRule(imp.Pos(), "randimport",
				"import of %s in cycle-domain package: the global source is process-seeded; thread the scenario's seeded rng instead", path)
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); ok {
				pass.ReportRule(n.Pos(), "maprange",
					"range over map in cycle-domain package: iteration order is randomized per run; iterate a sorted slice instead")
			}
		case *ast.SelectorExpr:
			if obj := timeFunc(pass.TypesInfo, n); obj != "" {
				pass.ReportRule(n.Pos(), "wallclock",
					"call of time.%s in cycle-domain package: wall-clock reads are nondeterministic; use simulated cycles", obj)
			}
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		return true
	})
}

// checkCall applies the address-dependence rules to one call: %p format
// verbs, reflect.Value.MapKeys, and pointer-keyed sorts.
func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if sel == nil {
		return
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "fmt":
		for _, arg := range call.Args {
			tv, ok := info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				continue
			}
			// %%p is a literal "%p", not a verb.
			if strings.Contains(strings.ReplaceAll(constant.StringVal(tv.Value), "%%", ""), "%p") {
				pass.ReportRule(arg.Pos(), "addrformat",
					"%%p verb in cycle-domain package: formatted addresses differ across runs with identical seeds")
				return
			}
		}
	case "reflect":
		if fn.Name() == "MapKeys" && fn.Type().(*types.Signature).Recv() != nil {
			pass.ReportRule(call.Pos(), "mapkeys",
				"reflect.Value.MapKeys in cycle-domain package: key order is map iteration order, randomized per run")
		}
	case "sort":
		if fn.Name() != "Slice" && fn.Name() != "SliceStable" {
			return
		}
		if len(call.Args) == 0 {
			return
		}
		t := info.TypeOf(call.Args[0])
		if t == nil {
			return
		}
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return
		}
		if _, ok := sl.Elem().Underlying().(*types.Pointer); ok {
			pass.ReportRule(call.Pos(), "ptrsort",
				"sort.%s over a slice of pointers in cycle-domain package: comparing harvested pointer keys orders by allocation address; sort by a stable field instead", fn.Name())
		}
	}
}

// timeFunc reports the name of the forbidden time-package function a
// selector refers to, or "" if it is something else.
func timeFunc(info *types.Info, sel *ast.SelectorExpr) string {
	switch sel.Sel.Name {
	case "Now", "Since", "Until":
	default:
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "time" {
		return ""
	}
	return sel.Sel.Name
}

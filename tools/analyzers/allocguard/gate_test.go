package allocguard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a one-package module for the escape gate to
// compile for real. The gate shells out to the actual go toolchain, so
// these tests double as a check that the -m=2 parsing keeps up with the
// installed compiler.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module gatefixture\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runGate(t *testing.T, files map[string]string) (int, string) {
	t.Helper()
	dir := writeModule(t, files)
	var buf strings.Builder
	n, err := Gate(dir, nil, &buf)
	if err != nil {
		t.Fatalf("Gate: %v", err)
	}
	return n, buf.String()
}

func TestGateCatchesEscapes(t *testing.T) {
	n, out := runGate(t, map[string]string{"hot/hot.go": `package hot

//shsim:noalloc
func Leak(n int) *int {
	v := n
	return &v
}

type Counter struct{ N int }

//shsim:noalloc
func (c *Counter) Clone() *Counter {
	d := *c
	return &d
}

// Cold allocates freely; no annotation, no verdict.
func Cold(n int) *int {
	v := n
	return &v
}
`})
	if n != 2 {
		t.Fatalf("want 2 violations, got %d:\n%s", n, out)
	}
	for _, want := range []string{
		"allocguard(heapalloc)", "Leak", "(*Counter).Clone", "hot/hot.go:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("gate output missing %q:\n%s", want, out)
		}
	}
}

func TestGateInlineContract(t *testing.T) {
	n, out := runGate(t, map[string]string{"hot/hot.go": `package hot

// Fib is recursive, so the compiler will refuse to inline it.
//shsim:noalloc inline
func Fib(n int) int {
	if n < 2 {
		return n
	}
	return Fib(n-1) + Fib(n-2)
}

//shsim:noalloc inline
func Add(a, b int) int { return a + b }
`})
	if n != 1 {
		t.Fatalf("want 1 violation, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "allocguard(inline)") || !strings.Contains(out, "Fib") {
		t.Errorf("want an inline verdict naming Fib:\n%s", out)
	}
	if strings.Contains(out, "Add") {
		t.Errorf("Add is inlinable and must pass:\n%s", out)
	}
}

func TestGateAllocOkSuppresses(t *testing.T) {
	n, out := runGate(t, map[string]string{"hot/hot.go": `package hot

//shsim:noalloc
func Grow(n int) []uint64 {
	out := make([]uint64, n) //shsim:alloc-ok one-time setup buffer, before the loop
	return out
}
`})
	if n != 0 {
		t.Fatalf("want reasoned alloc-ok to suppress the escape, got %d:\n%s", n, out)
	}
}

func TestGateCleanFunctionPasses(t *testing.T) {
	n, out := runGate(t, map[string]string{"hot/hot.go": `package hot

//shsim:noalloc
func Sum(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s
}
`})
	if n != 0 {
		t.Fatalf("want clean function to pass, got %d:\n%s", n, out)
	}
}

func TestGateSkipsUnannotatedPackages(t *testing.T) {
	// No //shsim:noalloc anywhere: the gate must not even compile.
	n, out := runGate(t, map[string]string{"cold/cold.go": `package cold

func Alloc(n int) *int {
	v := n
	return &v
}
`})
	if n != 0 || out != "" {
		t.Fatalf("want no verdicts for unannotated module, got %d:\n%s", n, out)
	}
}

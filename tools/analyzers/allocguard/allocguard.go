// Package allocguard is the compile-time complement of the
// AllocsPerRun runtime guards: functions annotated `//shsim:noalloc`
// (the per-cycle hot paths — cpu.Core.StepInto/RunBlock, the
// superblock retire loop, the mem.Hierarchy access paths, the service
// cell's inner loop) are proven allocation-free in two layers.
//
// The vet analyzer in this file catches the constructs that always
// heap-allocate, at the AST, with precise positions:
//
//	make        make(map[...]...) / make(chan ...) — always heap
//	goroutine   go statements — a new goroutine is an allocation (and
//	            a determinism hazard the cycle domain handles at the
//	            kernel layer only)
//	fmtcall     calls into package fmt — the ...any boxing allocates
//
// The escape-analysis gate (gate.go, `shlint -allocgate`, wired into
// scripts/lint.sh) is the sound layer: it recompiles the annotated
// packages with `-gcflags=-m=2` and fails on any "escapes to heap" /
// "moved to heap" diagnostic inside an annotated function, and on a
// lost inline for functions annotated `//shsim:noalloc inline`.
//
// `//shsim:alloc-ok <reason>` on the offending line suppresses both
// layers for cold paths (an error return constructed once per run);
// the reason is mandatory.
package allocguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/analyzers/framework"
	"repro/tools/analyzers/internal/flow"
)

// Directives recognized by allocguard.
const (
	DirNoalloc = "noalloc"
	DirAllowed = "alloc-ok"
)

var Analyzer = &framework.Analyzer{
	Name: "allocguard",
	Doc: "forbid always-allocating constructs in //shsim:noalloc functions\n\n" +
		"AST layer of the hot-path allocation gate; `shlint -allocgate` adds the escape-analysis proof. " +
		"Suppress cold paths line-by-line with //shsim:alloc-ok <reason>.",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, d := range flow.Misplaced(file, DirNoalloc) {
			pass.ReportRule(d.Pos, "misplaced",
				"//shsim:noalloc must be the doc comment of a function declaration")
		}
		allowed := allowedLines(pass, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			d, ok := flow.FuncDirective(fd, DirNoalloc)
			if !ok {
				continue
			}
			if d.Arg != "" && d.Arg != "inline" {
				pass.ReportRule(d.Pos, "misplaced",
					"//shsim:noalloc takes no argument or \"inline\", got %q", d.Arg)
			}
			checkBody(pass, fd, allowed)
		}
	}
	return nil
}

// allowedLines collects the lines carrying a //shsim:alloc-ok
// suppression, reporting the ones with no written reason.
func allowedLines(pass *framework.Pass, file *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range file.Comments {
		for _, d := range flow.Directives(cg) {
			if d.Name != DirAllowed {
				continue
			}
			if d.Arg == "" {
				pass.ReportRule(d.Pos, "suppression",
					"//shsim:alloc-ok requires a written reason")
				continue
			}
			out[pass.Fset.Position(d.Pos).Line] = true
		}
	}
	return out
}

func checkBody(pass *framework.Pass, fd *ast.FuncDecl, allowed map[int]bool) {
	info := pass.TypesInfo
	report := func(pos token.Pos, rule, format string, args ...any) {
		if allowed[pass.Fset.Position(pos).Line] {
			return
		}
		pass.ReportRule(pos, rule, format, args...)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n.Pos(), "goroutine",
				"go statement in //shsim:noalloc function %s: goroutine start allocates", flow.FuncName(funcOf(pass, fd)))
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" && len(n.Args) > 0 {
					if tv, ok := info.Types[n.Args[0]]; ok && alwaysHeap(tv.Type) {
						report(n.Pos(), "make",
							"make of %s in //shsim:noalloc function %s always heap-allocates",
							tv.Type.String(), flow.FuncName(funcOf(pass, fd)))
					}
				}
				return true
			}
			if callee := flow.Callee(info, n); callee != nil &&
				callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
				report(n.Pos(), "fmtcall",
					"fmt.%s call in //shsim:noalloc function %s: variadic boxing allocates",
					callee.Name(), flow.FuncName(funcOf(pass, fd)))
			}
		}
		return true
	})
}

func funcOf(pass *framework.Pass, fd *ast.FuncDecl) *types.Func {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		// Unresolvable declarations cannot occur in a type-checked
		// package; keep diagnostics alive regardless.
		return types.NewFunc(token.NoPos, nil, fd.Name.Name, types.NewSignatureType(nil, nil, nil, nil, nil, false))
	}
	return fn
}

func alwaysHeap(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Map, *types.Chan:
		return true
	}
	return false
}

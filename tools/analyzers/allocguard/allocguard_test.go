package allocguard

import (
	"go/types"
	"strings"
	"testing"

	"repro/tools/analyzers/framework"
	"repro/tools/analyzers/internal/analyzertest"
)

func deps() map[string]*types.Package {
	return map[string]*types.Package{"fmt": analyzertest.Fmt()}
}

func check(t *testing.T, src string) []framework.Diagnostic {
	t.Helper()
	return analyzertest.Check(t, "repro/internal/cpu",
		map[string]string{"hot.go": src}, deps(), Analyzer)
}

func TestAlwaysAllocatingConstructs(t *testing.T) {
	diags := check(t, `package cpu

import "fmt"

//shsim:noalloc
func step(n int) error {
	seen := make(map[uint64]bool, n)
	events := make(chan int)
	go func() { events <- 1 }()
	_ = seen
	return fmt.Errorf("boom %d", n)
}
`)
	rules := map[string]int{}
	for _, d := range diags {
		rules[d.Rule]++
	}
	// Two makes (map and chan), one go statement, one fmt call.
	if rules["make"] != 2 || rules["goroutine"] != 1 || rules["fmtcall"] != 1 || len(diags) != 4 {
		t.Fatalf("want 2 make + 1 goroutine + 1 fmtcall, got %v", analyzertest.Messages(diags))
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "step") {
			t.Errorf("diagnostic should name the annotated function: %s", d.Message)
		}
	}
}

func TestSliceMakeAllowed(t *testing.T) {
	// make([]T, n) can stack-allocate; only map/chan are categorical.
	// The escape gate, not the AST layer, judges slices.
	diags := check(t, `package cpu

//shsim:noalloc
func step(n int) int {
	buf := make([]uint64, 8)
	return len(buf) + n
}
`)
	if len(diags) != 0 {
		t.Fatalf("make of a slice is the gate's business, got %v", analyzertest.Messages(diags))
	}
}

func TestAllocOkSuppressesWithReason(t *testing.T) {
	diags := check(t, `package cpu

import "fmt"

//shsim:noalloc
func step(n int) error {
	if n < 0 {
		return fmt.Errorf("negative step %d", n) //shsim:alloc-ok cold fault path; ends the run
	}
	return nil
}
`)
	if len(diags) != 0 {
		t.Fatalf("reasoned alloc-ok must suppress, got %v", analyzertest.Messages(diags))
	}
}

func TestReasonlessAllocOkIsAFinding(t *testing.T) {
	diags := check(t, `package cpu

import "fmt"

//shsim:noalloc
func step(n int) error {
	return fmt.Errorf("bad %d", n) //shsim:alloc-ok
}
`)
	rules := map[string]bool{}
	for _, d := range diags {
		rules[d.Rule] = true
	}
	// The empty suppression is reported and does not license the line.
	if len(diags) != 2 || !rules["suppression"] || !rules["fmtcall"] {
		t.Fatalf("want suppression + fmtcall, got %v", analyzertest.Messages(diags))
	}
}

func TestUnannotatedFunctionsIgnored(t *testing.T) {
	diags := check(t, `package cpu

import "fmt"

func cold(n int) error {
	_ = make(map[int]int)
	return fmt.Errorf("fine here %d", n)
}
`)
	if len(diags) != 0 {
		t.Fatalf("unannotated functions are out of scope, got %v", analyzertest.Messages(diags))
	}
}

func TestMisplacedAndBadArgument(t *testing.T) {
	diags := check(t, `package cpu

//shsim:noalloc
var hot int

//shsim:noalloc always
func step() {}
`)
	if len(diags) != 2 {
		t.Fatalf("want 2 misplaced diagnostics, got %v", analyzertest.Messages(diags))
	}
	for _, d := range diags {
		if d.Rule != "misplaced" {
			t.Errorf("want rule misplaced, got %q (%s)", d.Rule, d.Message)
		}
	}
}

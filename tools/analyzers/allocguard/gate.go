package allocguard

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// annotated is one //shsim:noalloc function found in source: where its
// body spans, and whether it must also stay inlinable.
type annotated struct {
	pkg        string
	file       string // absolute path
	name       string // compiler-style: F, T.M, (*T).M
	start, end int    // declaration line range, inclusive
	inline     bool
}

// Gate is the escape-analysis layer of the hot-path allocation proof:
// it finds every //shsim:noalloc function under the given package
// patterns, recompiles those packages with -gcflags=-m=2, and turns
// the compiler's own escape and inlining diagnostics into verdicts —
// any "escapes to heap" / "moved to heap" inside an annotated
// function's lines fails (rule "heapalloc"), as does a "cannot inline"
// for a function annotated `//shsim:noalloc inline` (rule "inline").
// Lines carrying `//shsim:alloc-ok <reason>` are exempt.
//
// The go command replays cached compile diagnostics, so repeated gate
// runs cost one cache probe, not a rebuild.
//
// Violations are written to out as "file:line: allocguard(rule): msg";
// the returned count is the number written. err reports operational
// failures (go list/build breakage), not violations.
func Gate(dir string, patterns []string, out io.Writer) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := listPackages(dir, patterns)
	if err != nil {
		return 0, err
	}

	fset := token.NewFileSet()
	var funcs []annotated
	allowed := map[string]map[int]bool{} // file -> line -> suppressed
	var buildPkgs []string
	for _, p := range pkgs {
		before := len(funcs)
		for _, gofile := range p.files {
			path := filepath.Join(p.dir, gofile)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return 0, fmt.Errorf("allocguard: parsing %s: %w", path, err)
			}
			funcs = append(funcs, annotatedFuncs(fset, path, p.importPath, f)...)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//shsim:alloc-ok")
					if !ok || strings.TrimSpace(rest) == "" {
						continue // reasonless suppressions are the vet analyzer's finding
					}
					if allowed[path] == nil {
						allowed[path] = map[int]bool{}
					}
					allowed[path][fset.Position(c.Pos()).Line] = true
				}
			}
		}
		if len(funcs) > before {
			buildPkgs = append(buildPkgs, p.importPath)
		}
	}
	if len(buildPkgs) == 0 {
		return 0, nil
	}

	diags, err := compileDiagnostics(dir, buildPkgs)
	if err != nil {
		return 0, err
	}

	canInline := map[string]bool{} // file + "\x00" + name
	for _, d := range diags {
		if name, ok := strings.CutPrefix(d.msg, "can inline "); ok {
			name, _, _ = strings.Cut(name, " ")
			name = strings.TrimSuffix(name, ":")
			canInline[d.file+"\x00"+name] = true
		}
	}

	violations := 0
	report := func(file string, line int, rule, format string, args ...any) {
		rel := file
		if r, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		fmt.Fprintf(out, "%s:%d: allocguard(%s): %s\n", rel, line, rule, fmt.Sprintf(format, args...))
		violations++
	}
	// -m=2 often reports the same escape twice ("x escapes to heap" and
	// "moved to heap: x"); one verdict per line is enough.
	seen := map[string]bool{}
	for _, d := range diags {
		if !strings.Contains(d.msg, "escapes to heap") && !strings.Contains(d.msg, "moved to heap") {
			continue
		}
		key := d.file + "\x00" + strconv.Itoa(d.line)
		if seen[key] {
			continue
		}
		for _, fn := range funcs {
			if fn.file == d.file && d.line >= fn.start && d.line <= fn.end && !allowed[d.file][d.line] {
				seen[key] = true
				report(d.file, d.line, "heapalloc",
					"heap allocation in //shsim:noalloc function %s: %s", fn.name, d.msg)
				break
			}
		}
	}
	for _, fn := range funcs {
		if fn.inline && !canInline[fn.file+"\x00"+fn.name] {
			report(fn.file, fn.start, "inline",
				"function %s is annotated //shsim:noalloc inline but the compiler reports no \"can inline %s\"",
				fn.name, fn.name)
		}
	}
	return violations, nil
}

type listedPackage struct {
	importPath string
	dir        string
	files      []string
}

func listPackages(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-f", "{{.ImportPath}}\x01{{.Dir}}\x01{{range .GoFiles}}{{.}}\x02{{end}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		detail := ""
		if ee, ok := err.(*exec.ExitError); ok {
			detail = ": " + strings.TrimSpace(string(ee.Stderr))
		}
		return nil, fmt.Errorf("allocguard: go list %s%s", strings.Join(patterns, " "), detail)
	}
	var pkgs []listedPackage
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		parts := strings.Split(line, "\x01")
		if len(parts) != 3 {
			continue
		}
		p := listedPackage{importPath: parts[0], dir: parts[1]}
		for _, f := range strings.Split(parts[2], "\x02") {
			if f != "" {
				p.files = append(p.files, f)
			}
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].importPath < pkgs[j].importPath })
	return pkgs, nil
}

// annotatedFuncs extracts the //shsim:noalloc declarations of one file.
func annotatedFuncs(fset *token.FileSet, path, importPath string, f *ast.File) []annotated {
	var out []annotated
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || fd.Body == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			rest, ok := strings.CutPrefix(c.Text, "//shsim:noalloc")
			if !ok {
				continue
			}
			out = append(out, annotated{
				pkg:    importPath,
				file:   path,
				name:   compilerName(fd),
				start:  fset.Position(fd.Pos()).Line,
				end:    fset.Position(fd.End()).Line,
				inline: strings.TrimSpace(rest) == "inline",
			})
			break
		}
	}
	return out
}

// compilerName renders a declaration the way -m diagnostics name it:
// "F", "T.M", or "(*T).M".
func compilerName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	star := false
	if se, ok := t.(*ast.StarExpr); ok {
		star = true
		t = se.X
	}
	base := ""
	switch t := t.(type) {
	case *ast.Ident:
		base = t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := t.X.(*ast.Ident); ok {
			base = id.Name
		}
	default:
		base = "?"
	}
	if star {
		return "(*" + base + ")." + fd.Name.Name
	}
	return base + "." + fd.Name.Name
}

type diagnostic struct {
	file string // absolute
	line int
	msg  string
}

var diagRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// compileDiagnostics recompiles the packages with -m=2 and parses the
// compiler's position-tagged output.
func compileDiagnostics(dir string, pkgs []string) ([]diagnostic, error) {
	args := append([]string{"build", "-gcflags=-m=2"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("allocguard: go build -gcflags=-m=2 failed: %v\n%s", err, out)
	}
	var diags []diagnostic
	for _, line := range strings.Split(string(out), "\n") {
		m := diagRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		n, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		diags = append(diags, diagnostic{file: filepath.Clean(file), line: n, msg: m[4]})
	}
	return diags, nil
}

// Command shlint is the repository's custom vet tool. It bundles the
// five project-specific analyzers behind the `go vet -vettool`
// protocol:
//
//	detlint       lexical determinism contract in cycle-domain packages
//	detflow       interprocedural proof that cycle-domain entry points
//	              reach no nondeterminism source (fact-propagated)
//	barrierguard  cycle-quantum LLC protocol: no mutating shared-LLC
//	              method reachable from quantum-phase code
//	allocguard    always-allocating constructs in //shsim:noalloc
//	              functions (AST layer)
//	metricsguard  nil-guarded *metrics.Registry / *metrics.FineHist uses
//
//	go build -o bin/shlint repro/tools/analyzers/shlint
//	go vet -vettool=$(pwd)/bin/shlint ./...
//	go vet -vettool=$(pwd)/bin/shlint -run=detflow -json ./...
//
// The binary has a second mode outside the vet protocol:
//
//	shlint -allocgate [packages...]
//
// runs the escape-analysis layer of the allocation gate: recompile the
// named packages (default ./...) with -gcflags=-m=2 and fail on heap
// allocations or lost inlines in //shsim:noalloc functions.
//
// scripts/lint.sh wraps both modes and is the gating CI entry point.
// See the analyzer package docs for what each check enforces and why.
package main

import (
	"fmt"
	"os"

	"repro/tools/analyzers/allocguard"
	"repro/tools/analyzers/barrierguard"
	"repro/tools/analyzers/detflow"
	"repro/tools/analyzers/detlint"
	"repro/tools/analyzers/framework"
	"repro/tools/analyzers/metricsguard"
)

func main() {
	if len(os.Args) >= 2 && os.Args[1] == "-allocgate" {
		dir, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		n, err := allocguard.Gate(dir, os.Args[2:], os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "allocgate: %d violation(s)\n", n)
			os.Exit(2)
		}
		return
	}
	framework.Main(
		detlint.Analyzer,
		detflow.Analyzer,
		barrierguard.Analyzer,
		allocguard.Analyzer,
		metricsguard.Analyzer,
	)
}

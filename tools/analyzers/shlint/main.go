// Command shlint is the repository's custom vet tool. It bundles the
// project-specific analyzers — detlint (determinism contract in
// cycle-domain packages) and metricsguard (nil-guarded metrics
// registry uses) — behind the `go vet -vettool` protocol:
//
//	go build -o bin/shlint repro/tools/analyzers/shlint
//	go vet -vettool=$(pwd)/bin/shlint ./...
//
// scripts/lint.sh wraps exactly that invocation and is the gating CI
// entry point. See the analyzer package docs for what each check
// enforces and why.
package main

import (
	"repro/tools/analyzers/detlint"
	"repro/tools/analyzers/framework"
	"repro/tools/analyzers/metricsguard"
)

func main() {
	framework.Main(detlint.Analyzer, metricsguard.Analyzer)
}

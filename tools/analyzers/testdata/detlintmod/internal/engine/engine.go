// Package engine is the detflow integration fixture: annotated
// cycle-domain entry points that reach nondeterminism sources only
// through wrappers and package boundaries, where detlint's lexical
// rules cannot see them.
package engine

import (
	"time"

	"detlintfixture/internal/fillutil"
)

// Engine mimics the shape of a per-core step engine.
type Engine struct {
	fills    map[uint64]uint64
	installs []uint64
}

// harvest wraps the helper — one extra frame between the entry point
// and the source.
func (e *Engine) harvest(now uint64) []uint64 {
	return fillutil.Ready(e.fills, now)
}

// Step is the PR-1 reclaim bug in its disguised interprocedural form.
//
//shsim:cycle-entry
func (e *Engine) Step(now uint64) {
	e.installs = append(e.installs, e.harvest(now)...)
}

func stamp() int64 { return time.Now().UnixNano() }

// Tick leaks wall-clock time through a local helper.
//
//shsim:cycle-entry
func (e *Engine) Tick() int64 { return stamp() }

// Drain picks among ready queues with a multi-case select: the runtime
// chooses pseudo-randomly among ready cases.
//
//shsim:cycle-entry
func Drain(a, b chan uint64) uint64 {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

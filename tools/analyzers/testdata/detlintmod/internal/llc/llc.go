// Package llc is the barrierguard integration fixture: a shared LLC
// reduction whose methods carry the read/mutate classification.
package llc

// SharedLLC holds the committed tag state plus a private access log.
type SharedLLC struct {
	tags []uint64
	log  []uint64
}

// Contains probes committed state.
//
//shsim:llc-read
func (s *SharedLLC) Contains(line uint64) bool {
	for _, t := range s.tags {
		if t == line {
			return true
		}
	}
	return false
}

// Demand records a demand access in the private log.
//
//shsim:llc-read
func (s *SharedLLC) Demand(line uint64) uint64 {
	s.log = append(s.log, line)
	return 10
}

// Commit folds the quantum's log into the committed tags.
//
//shsim:llc-mutate
func (s *SharedLLC) Commit() {
	s.tags = append(s.tags, s.log...)
	s.log = s.log[:0]
}

// Evict is a seeded defect: a method of a classified type with no
// classification of its own.
func (s *SharedLLC) Evict() {
	s.tags = s.tags[:0]
}

// Probe is a second shared type whose single method carries a seeded
// conflicting classification.
type Probe struct{ hits uint64 }

// Sample is a seeded defect: annotated both read and mutate.
//
//shsim:llc-read
//shsim:llc-mutate
func (p *Probe) Sample() uint64 {
	p.hits++
	return p.hits
}

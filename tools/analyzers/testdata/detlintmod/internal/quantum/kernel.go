// Package quantum is the barrierguard integration fixture's kernel
// side: quantum-phase code reaching the shared LLC across the package
// boundary.
package quantum

import "detlintfixture/internal/llc"

type core struct{ llc *llc.SharedLLC }

// flush sneaks the commit into the quantum path.
func (c *core) flush() { c.llc.Commit() }

// Run is the seeded protocol violation: a quantum-phase root that
// reaches the mutating method through a helper and a package boundary.
//
//shsim:quantum-phase
func (c *core) Run() {
	_ = c.llc.Demand(1)
	c.flush()
}

// Barrier is the licensed path: commit-phase code may mutate.
//
//shsim:commit-phase
func (c *core) Barrier() { c.llc.Commit() }

// Package mem is an integration fixture for detlint: a stdlib-only
// reduction of the PR-1 reclaim nondeterminism bug, compiled and
// vetted by a real `go vet -vettool=shlint` invocation in the
// analyzer integration test.
package mem

import (
	"math/rand"
	"time"
)

type fill struct {
	line  uint64
	ready uint64
}

// Hierarchy mimics the shape of the original buggy mem.Hierarchy: an
// in-flight fill table keyed by cache line.
type Hierarchy struct {
	fills    map[uint64]fill
	installs []uint64
}

// Reclaim installs every completed fill. BUG (the PR-1 reduction):
// map iteration order decides install order, and install order decides
// eviction victims downstream — nondeterministic across runs.
func (h *Hierarchy) Reclaim(now uint64) {
	for line, f := range h.fills {
		if f.ready <= now {
			h.installs = append(h.installs, line)
			delete(h.fills, line)
		}
	}
}

// Stamp leaks wall-clock time into the cycle domain.
func (h *Hierarchy) Stamp() int64 {
	return time.Now().UnixNano()
}

// Jitter draws from the process-seeded global source.
func Jitter() uint64 {
	return uint64(rand.Intn(64))
}

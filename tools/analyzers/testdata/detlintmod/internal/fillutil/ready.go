// Package fillutil is a helper outside the cycle-domain package list:
// detlint's lexical map-range ban does not apply here, so only
// detflow's interprocedural taint can connect the iteration below to a
// cycle-domain entry point.
package fillutil

// Ready returns the lines whose fills completed. BUG: map iteration
// order decides the result order.
func Ready(fills map[uint64]uint64, now uint64) []uint64 {
	var out []uint64
	for line, ready := range fills {
		if ready <= now {
			out = append(out, line)
		}
	}
	return out
}

// Package obs is the metricsguard integration fixture: unguarded uses
// of the nil-able metrics pointers, plus the recognized guard idiom as
// a control.
package obs

import "detlintfixture/internal/metrics"

// Tracer carries optional observability hooks.
type Tracer struct {
	Reg  *metrics.Registry
	Hist *metrics.FineHist
}

// Bump is a seeded defect: Reg is nil when metrics are off.
func (t *Tracer) Bump() {
	t.Reg.Hides++
}

// Record is a seeded defect on the FineHist extension: method calls
// through a nil-able histogram pointer need the same guard.
func (t *Tracer) Record(v uint64) {
	t.Hist.Observe(v)
}

// Guarded is the control: the recognized idiom passes.
func (t *Tracer) Guarded() {
	if r := t.Reg; r != nil {
		r.Faults++
	}
}

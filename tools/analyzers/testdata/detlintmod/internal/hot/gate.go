package hot

// Leak is the seeded escape-gate defect: its local is moved to the
// heap by the returned pointer.
//
//shsim:noalloc
func Leak(n int) *int {
	v := n
	return &v
}

// Fib is the seeded inline-contract defect: recursion means the
// compiler will never report "can inline Fib".
//
//shsim:noalloc inline
func Fib(n int) int {
	if n < 2 {
		return n
	}
	return Fib(n-1) + Fib(n-2)
}

// Package hot is the allocguard integration fixture: //shsim:noalloc
// functions with seeded allocation defects for both the AST vet layer
// (this file) and the escape-analysis gate (gate.go).
package hot

import "fmt"

// Step is the seeded vet-layer defect trio: a map make, a goroutine
// start, and a fmt call, all inside a declared hot path.
//
//shsim:noalloc
func Step(n int) error {
	seen := make(map[uint64]bool, n)
	done := make(chan struct{})
	go func() { close(done) }()
	_ = seen
	<-done
	return fmt.Errorf("step %d", n)
}

// Sum is the control: a clean hot path reports nothing.
//
//shsim:noalloc
func Sum(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs {
		s += x
	}
	return s
}

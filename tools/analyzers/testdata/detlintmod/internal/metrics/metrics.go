// Package metrics is the fixture's observability reduction; the
// internal/metrics path suffix is what metricsguard keys on.
package metrics

// FineHist is a nil-able histogram series.
type FineHist struct {
	Count uint64
	Max   uint64
}

// Observe records one sample.
func (h *FineHist) Observe(v uint64) {
	h.Count++
	if v > h.Max {
		h.Max = v
	}
}

// Registry is the nil-able opt-in registry.
type Registry struct {
	Hides   uint64
	Faults  uint64
	Sojourn FineHist
}

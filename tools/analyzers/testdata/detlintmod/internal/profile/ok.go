// Package profile is the negative control: identical constructs
// outside the cycle domain must not be flagged.
package profile

import "time"

// Aggregate may use maps and clocks freely — it runs outside the
// simulated cycle domain.
func Aggregate(samples map[int]uint64) (uint64, time.Time) {
	var total uint64
	for _, w := range samples {
		total += w
	}
	return total, time.Now()
}

module detlintfixture

go 1.22

package framework

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the JSON the go command writes to $WORK/.../vet.cfg
// before invoking a -vettool binary (cmd/go/internal/work.vetConfig).
// Field names must match exactly; unknown fields are ignored on both
// sides, so this stays compatible across toolchain versions.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// jsonFlag is the flag description the go command decodes from the
// tool's `-flags` output (cmd/go/internal/vet reads Name/Bool/Usage).
// Flags advertised here become `go vet` command-line flags and are
// forwarded back to the tool ahead of the vet.cfg argument.
type jsonFlag struct {
	Name  string
	Bool  bool
	Usage string
}

var toolFlags = []jsonFlag{
	{Name: "run", Bool: false, Usage: "comma-separated analyzer names to run (default: all registered)"},
	{Name: "json", Bool: true, Usage: "emit diagnostics as one JSON object per package on stdout"},
}

// options are the per-invocation settings parsed from forwarded flags,
// with SHLINT_RUN / SHLINT_JSON environment fallbacks for drivers that
// cannot forward flags through `go vet`.
type options struct {
	run  string
	json bool
}

func parseOptions(args []string) (options, string) {
	opts := options{run: os.Getenv("SHLINT_RUN")}
	if v := os.Getenv("SHLINT_JSON"); v != "" && v != "0" && v != "false" {
		opts.json = true
	}
	var cfgPath string
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-run="):
			opts.run = strings.TrimPrefix(a, "-run=")
		case a == "-json", a == "-json=true":
			opts.json = true
		case a == "-json=false":
			opts.json = false
		case strings.HasSuffix(a, ".cfg"):
			cfgPath = a
		}
	}
	return opts, cfgPath
}

// selectAnalyzers filters the registered analyzers by the -run list.
func selectAnalyzers(all []*Analyzer, run string) ([]*Analyzer, error) {
	if run == "" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(run, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (registered: %s)", name, analyzerNames(all))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers")
	}
	return out, nil
}

func analyzerNames(all []*Analyzer) string {
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// Main is the entry point for a vettool binary: it speaks the protocol
// the go command expects from `go vet -vettool=<bin>`.
//
//   - `<bin> -V=full` must print "<name> version <ver>" so the go
//     command can derive a cache-busting tool ID. The version embeds a
//     hash of the tool binary itself: rebuilding the tool with changed
//     analyzer semantics must evict stale clean verdicts, and a fixed
//     version string would not.
//   - `<bin> -flags` prints the tool's flag descriptions as JSON; the
//     go command registers them as `go vet` flags and forwards them.
//   - Otherwise the last argument is the path to a vet.cfg JSON file
//     describing one package unit. The tool type-checks the unit
//     against the export data the go command already built (ImportMap
//   - PackageFile), merges the dependencies' fact files
//     (PackageVetx), runs the analyzers, writes this unit's facts to
//     VetxOutput, prints findings as "file:line:col: message" on
//     stderr (or JSON on stdout with -json) and exits 2 if there were
//     any. Units marked VetxOnly are dependencies being vetted for
//     their facts alone: in-module units are analyzed with diagnostics
//     suppressed; out-of-module units (the standard library) export an
//     empty fact set without analysis, since every fact the analyzers
//     need about the standard library is built in.
func Main(analyzers ...*Analyzer) {
	name := filepath.Base(os.Args[0])
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		fmt.Printf("%s version 2.0-%s\n", strings.TrimSuffix(name, ".exe"), selfHash())
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		out, err := json.Marshal(toolFlags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	opts, cfgPath := parseOptions(os.Args[1:])
	if cfgPath == "" {
		fmt.Fprintf(os.Stderr, "usage: %s [-run=a,b] [-json] vet.cfg  (invoked by `go vet -vettool=%s`)\n", name, name)
		fmt.Fprintf(os.Stderr, "registered analyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, firstLine(a.Doc))
		}
		os.Exit(1)
	}
	selected, err := selectAnalyzers(analyzers, opts.run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
	unit, err := runUnit(cfgPath, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
	if opts.json {
		emitJSON(unit)
	} else {
		for _, d := range unit.diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", unit.fset.Position(d.Pos), d.String())
		}
	}
	if len(unit.diags) > 0 {
		os.Exit(2)
	}
}

// selfHash returns a short content hash of the running binary, making
// the tool ID — and therefore the go command's vet result cache key —
// track the binary's actual behavior.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:12]
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	Rule     string `json:"rule,omitempty"`
	Posn     string `json:"posn"`
	Message  string `json:"message"`
}

func emitJSON(unit *unitResult) {
	out := struct {
		Package     string           `json:"package"`
		Diagnostics []jsonDiagnostic `json:"diagnostics"`
	}{Package: unit.importPath, Diagnostics: []jsonDiagnostic{}}
	for _, d := range unit.diags {
		out.Diagnostics = append(out.Diagnostics, jsonDiagnostic{
			Analyzer: d.Analyzer,
			Rule:     d.Rule,
			Posn:     unit.fset.Position(d.Pos).String(),
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

type unitResult struct {
	importPath string
	diags      []Diagnostic
	fset       *token.FileSet
}

// inModule reports whether the unit belongs to the module being vetted
// (as opposed to the standard library or another dependency module).
// Only in-module units are analyzed for facts in VetxOnly mode: the
// analyzers model the standard library intrinsically and must not pay
// for (or depend on) type-checking it.
func (cfg *vetConfig) inModule() bool {
	return cfg.ModulePath != "" &&
		(cfg.ImportPath == cfg.ModulePath || strings.HasPrefix(cfg.ImportPath, cfg.ModulePath+"/"))
}

func runUnit(cfgPath string, analyzers []*Analyzer) (*unitResult, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	res := &unitResult{importPath: cfg.ImportPath, fset: token.NewFileSet()}

	// Out-of-module fact-only units (the standard library, other
	// modules): nothing to analyze, write an empty fact set so the go
	// command can cache it.
	if cfg.VetxOnly && !cfg.inModule() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				return nil, err
			}
		}
		return res, nil
	}

	facts := NewFactSet()
	for _, vetx := range cfg.PackageVetx {
		if err := facts.MergeFile(vetx); err != nil {
			return nil, err
		}
	}

	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(res.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(res.fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(compiler, "amd64"),
		Error:    func(error) {}, // collect via the Check return, not per-error
	}
	if v := cfg.GoVersion; strings.HasPrefix(v, "go") {
		tc.GoVersion = v
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, res.fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	diags, err := Analyze(cfg.ImportPath, res.fset, files, pkg, info, facts, analyzers...)
	if err != nil {
		return nil, err
	}

	if cfg.VetxOutput != "" {
		encoded, err := facts.Encode()
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.VetxOutput, encoded, 0o666); err != nil {
			return nil, err
		}
	}
	// Fact-only dependency units report nothing: their diagnostics are
	// owned by the vet run that names them directly.
	if !cfg.VetxOnly {
		res.diags = diags
	}
	return res, nil
}

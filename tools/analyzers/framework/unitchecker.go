package framework

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the JSON the go command writes to $WORK/.../vet.cfg
// before invoking a -vettool binary (cmd/go/internal/work.vetConfig).
// Field names must match exactly; unknown fields are ignored on both
// sides, so this stays compatible across toolchain versions.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary: it speaks the protocol
// the go command expects from `go vet -vettool=<bin>`.
//
//   - `<bin> -V=full` must print "<name> version <ver>" so the go
//     command can derive a cache-busting tool ID (cmd/go/internal/work
//     rejects "devel" versions and anything else it cannot parse).
//   - Otherwise the last argument is the path to a vet.cfg JSON file
//     describing one package unit. The tool type-checks the unit
//     against the export data the go command already built (ImportMap
//   - PackageFile), runs the analyzers, prints findings as
//     "file:line:col: message" on stderr and exits 2 if there were
//     any. VetxOutput must be written even though we export no facts —
//     the go command reads it back to cache the (empty) fact set.
func Main(analyzers ...*Analyzer) {
	name := filepath.Base(os.Args[0])
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		// The version string feeds the build cache key; bump it when
		// analyzer semantics change so stale clean verdicts are evicted.
		fmt.Printf("%s version 1.0\n", strings.TrimSuffix(name, ".exe"))
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		// go vet probes the tool's flag set to decide which command-line
		// flags to forward. We define none.
		fmt.Println("[]")
		return
	}
	var cfgPath string
	for _, a := range os.Args[1:] {
		if strings.HasSuffix(a, ".cfg") {
			cfgPath = a
		}
	}
	if cfgPath == "" {
		fmt.Fprintf(os.Stderr, "usage: %s vet.cfg  (invoked by `go vet -vettool=%s`)\n", name, name)
		fmt.Fprintf(os.Stderr, "registered analyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, firstLine(a.Doc))
		}
		os.Exit(1)
	}
	diags, fset, err := runUnit(cfgPath, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
		}
		os.Exit(2)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func runUnit(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	// The go command reads VetxOutput back after a successful run to
	// cache the unit's exported facts. We export none, so an empty file
	// is the correct serialization.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, nil, err
		}
	}
	// Dependency units are vetted only for their facts; with no facts
	// to compute there is nothing to do.
	if cfg.VetxOnly {
		return nil, nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			return nil, nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(compiler, "amd64"),
		Error:    func(error) {}, // collect via the Check return, not per-error
	}
	if v := cfg.GoVersion; strings.HasPrefix(v, "go") {
		tc.GoVersion = v
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		return nil, nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	diags, err := Analyze(cfg.ImportPath, fset, files, pkg, info, analyzers...)
	return diags, fset, err
}

package framework

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestFactRoundTrip(t *testing.T) {
	f := NewFactSet()
	f.Export("detflow.taint", "p.A", "wallclock|A|time.Now")
	f.Export("detflow.taint", "p.B", "maprange|B|range")
	f.Export("barrierguard.llc", "p.A", "mutate")

	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	g := NewFactSet()
	if err := g.Merge(data); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ kind, key, want string }{
		{"detflow.taint", "p.A", "wallclock|A|time.Now"},
		{"detflow.taint", "p.B", "maprange|B|range"},
		{"barrierguard.llc", "p.A", "mutate"},
	} {
		if v, ok := g.Lookup(tc.kind, tc.key); !ok || v != tc.want {
			t.Errorf("Lookup(%s, %s) = %q, %v; want %q", tc.kind, tc.key, v, ok, tc.want)
		}
	}
	if _, ok := g.Lookup("detflow.taint", "p.C"); ok {
		t.Error("lookup of absent key succeeded")
	}
}

// TestReExport: Encode writes imported ∪ exported, which is what makes
// facts flow transitively through packages that add nothing themselves.
func TestReExport(t *testing.T) {
	base := NewFactSet()
	base.Export("k", "dep.F", "v1")
	data, err := base.Encode()
	if err != nil {
		t.Fatal(err)
	}

	mid := NewFactSet()
	if err := mid.Merge(data); err != nil {
		t.Fatal(err)
	}
	mid.Export("k", "mid.G", "v2")
	data2, err := mid.Encode()
	if err != nil {
		t.Fatal(err)
	}

	top := NewFactSet()
	if err := top.Merge(data2); err != nil {
		t.Fatal(err)
	}
	if v, ok := top.Lookup("k", "dep.F"); !ok || v != "v1" {
		t.Errorf("transitive fact lost: got %q, %v", v, ok)
	}
	if got, want := top.Keys("k"), []string{"dep.F", "mid.G"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Keys = %v, want %v (sorted)", got, want)
	}
}

// TestExportedShadowsImported: a pass's own verdict about a function
// wins over a stale imported one.
func TestExportedShadowsImported(t *testing.T) {
	f := NewFactSet()
	if err := f.Merge([]byte(`{"k":{"p.F":"old"}}`)); err != nil {
		t.Fatal(err)
	}
	f.Export("k", "p.F", "new")
	if v, _ := f.Lookup("k", "p.F"); v != "new" {
		t.Errorf("exported fact should shadow imported, got %q", v)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	mk := func() []byte {
		f := NewFactSet()
		f.Export("b", "y", "2")
		f.Export("a", "x", "1")
		f.Export("a", "z", "3")
		data, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if a, b := mk(), mk(); string(a) != string(b) {
		t.Errorf("Encode is not deterministic:\n%s\n%s", a, b)
	}
}

// TestMergeFileMissingAndEmpty: the go command omits or truncates fact
// files for packages that exported nothing; both read as empty.
func TestMergeFileMissingAndEmpty(t *testing.T) {
	f := NewFactSet()
	if err := f.MergeFile(filepath.Join(t.TempDir(), "nonexistent.vetx")); err != nil {
		t.Fatalf("missing vetx file must read as empty: %v", err)
	}
	empty := filepath.Join(t.TempDir(), "empty.vetx")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := f.MergeFile(empty); err != nil {
		t.Fatalf("empty vetx file must read as empty: %v", err)
	}
	if err := f.Merge([]byte("not json")); err == nil {
		t.Error("corrupt fact data should error")
	}
}

func TestObjectKey(t *testing.T) {
	pkg := types.NewPackage("repro/internal/mem", "mem")
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	fn := types.NewFunc(token.NoPos, pkg, "NewSharedLLC", sig)
	if got := ObjectKey(fn); got != "repro/internal/mem.NewSharedLLC" {
		t.Errorf("ObjectKey = %q", got)
	}

	named := types.NewNamed(types.NewTypeName(token.NoPos, pkg, "SharedLLC", nil), types.NewStruct(nil, nil), nil)
	recv := types.NewVar(token.NoPos, pkg, "s", types.NewPointer(named))
	msig := types.NewSignatureType(recv, nil, nil, nil, nil, false)
	m := types.NewFunc(token.NoPos, pkg, "Commit", msig)
	if got := ObjectKey(m); got != "(*repro/internal/mem.SharedLLC).Commit" {
		t.Errorf("method ObjectKey = %q", got)
	}
}

// TestSelectAnalyzers covers the -run filter used by both the vet
// protocol flag and the SHLINT_RUN fallback.
func TestSelectAnalyzers(t *testing.T) {
	a := &Analyzer{Name: "alpha"}
	b := &Analyzer{Name: "beta"}
	all := []*Analyzer{a, b}

	got, err := selectAnalyzers(all, "")
	if err != nil || len(got) != 2 {
		t.Fatalf("empty -run should select all: %v, %v", got, err)
	}
	got, err = selectAnalyzers(all, "beta, alpha")
	if err != nil || len(got) != 2 || got[0] != b || got[1] != a {
		t.Fatalf("-run order should be respected: %v, %v", got, err)
	}
	if _, err = selectAnalyzers(all, "gamma"); err == nil {
		t.Error("unknown analyzer name should error")
	}
	if _, err = selectAnalyzers(all, " , "); err == nil {
		t.Error("selecting no analyzers should error")
	}
}

func TestParseOptions(t *testing.T) {
	opts, cfg := parseOptions([]string{"-run=detlint,detflow", "-json", "/tmp/vet.cfg"})
	if opts.run != "detlint,detflow" || !opts.json || cfg != "/tmp/vet.cfg" {
		t.Errorf("parseOptions = %+v, %q", opts, cfg)
	}
	opts, cfg = parseOptions([]string{"-json=false", "b001/vet.cfg"})
	if opts.json || cfg != "b001/vet.cfg" {
		t.Errorf("parseOptions = %+v, %q", opts, cfg)
	}
}

// Package framework is a minimal, dependency-free reimplementation of
// the go/analysis driver contract: named analyzers that inspect a
// type-checked package and report position-tagged diagnostics. It
// exists because this repository builds offline against the standard
// library only, while `go vet -vettool` expects a binary speaking the
// unitchecker protocol (see unitchecker.go). Analyzers written against
// Analyzer/Pass here port to golang.org/x/tools/go/analysis by renaming
// imports.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags; by
	// convention a short all-lowercase word (e.g. "detlint").
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// Run inspects the package via pass and reports findings through
	// pass.Reportf. The error return is for operational failures, not
	// findings.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	ImportPath string
	// Facts carries cross-package analysis results: facts exported by
	// the passes over this package's dependencies are visible here, and
	// facts exported here become visible to dependents (see facts.go).
	// Never nil.
	Facts *FactSet

	report func(Diagnostic)
}

// Reportf records one finding at pos with no rule attribution.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportRule records one finding attributed to a named rule of the
// analyzer. Rendered as "analyzer(rule): message", and carried
// structurally in -json output, so fixture tests can assert that a
// seeded defect was caught by the right rule.
func (p *Pass) ReportRule(pos token.Pos, rule, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Rule:     rule,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: which analyzer, which of its rules, where,
// and why.
type Diagnostic struct {
	Analyzer string
	Rule     string // "" when the analyzer has a single implicit rule
	Pos      token.Pos
	Message  string
}

// String renders the diagnostic message with its attribution prefix
// (position excluded — the caller owns position formatting).
func (d Diagnostic) String() string {
	if d.Rule == "" {
		return d.Message
	}
	return fmt.Sprintf("%s(%s): %s", d.Analyzer, d.Rule, d.Message)
}

// Analyze runs every analyzer over one type-checked package and
// returns the findings sorted by position. It is the shared core of
// the unitchecker entry point and the in-process tests. facts may be
// nil when no cross-package facts are in play (single-package tests).
func Analyze(importPath string, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, facts *FactSet, analyzers ...*Analyzer) ([]Diagnostic, error) {
	if facts == nil {
		facts = NewFactSet()
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			ImportPath: importPath,
			Facts:      facts,
			report:     func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

package framework

import (
	"encoding/json"
	"fmt"
	"go/types"
	"os"
	"sort"
)

// A FactSet is the cross-package side channel of an analysis run. When
// the go command vets package P it first vets P's dependencies in
// "facts only" mode (vet.cfg VetxOnly=true), hands P the dependencies'
// fact files (vet.cfg PackageVetx), and stores P's own fact file
// (vet.cfg VetxOutput) for P's dependents. Analyzers use this to make
// whole-program arguments out of per-package passes: detflow exports
// "this function transitively reaches time.Now" from the package that
// defines the function, and the package that contains the cycle-domain
// entry point turns the imported fact into a diagnostic.
//
// Facts are triples (kind, object key, value): kind namespaces one
// logical table per analyzer concern ("detflow.taint",
// "barrierguard.llc", ...), the object key names a program object —
// use ObjectKey for functions — and the value is an analyzer-defined
// string (most encode "rule|chain|detail"). The serialization is JSON
// with sorted keys, so fact files are deterministic and the go
// command's content-addressed cache works.
//
// Exported facts include the imported ones (re-export): the go command
// only guarantees the fact files of direct dependencies, so re-export
// is what makes facts flow transitively.
type FactSet struct {
	imported map[string]map[string]string // kind -> object key -> value
	exported map[string]map[string]string
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{
		imported: map[string]map[string]string{},
		exported: map[string]map[string]string{},
	}
}

// ObjectKey names a function or method across package boundaries:
// "repro/internal/mem.NewSharedLLC" for package-level functions,
// "(*repro/internal/mem.SharedLLC).Commit" for methods. It is
// types.Func.FullName, pinned here as the fact-key contract.
func ObjectKey(fn *types.Func) string { return fn.FullName() }

// Export records a fact, overwriting any previous value for the same
// (kind, key).
func (f *FactSet) Export(kind, key, value string) {
	m := f.exported[kind]
	if m == nil {
		m = map[string]string{}
		f.exported[kind] = m
	}
	m[key] = value
}

// Lookup returns the fact for (kind, key), preferring facts exported
// during this pass over imported ones.
func (f *FactSet) Lookup(kind, key string) (string, bool) {
	if v, ok := f.exported[kind][key]; ok {
		return v, true
	}
	v, ok := f.imported[kind][key]
	return v, ok
}

// Keys returns the keys of every fact of the given kind (imported and
// exported), sorted.
func (f *FactSet) Keys(kind string) []string {
	seen := map[string]bool{}
	for k := range f.imported[kind] {
		seen[k] = true
	}
	for k := range f.exported[kind] {
		seen[k] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Encode serializes the full fact set (imported ∪ exported) for a
// VetxOutput file.
func (f *FactSet) Encode() ([]byte, error) {
	merged := map[string]map[string]string{}
	for kind, m := range f.imported {
		for k, v := range m {
			if merged[kind] == nil {
				merged[kind] = map[string]string{}
			}
			merged[kind][k] = v
		}
	}
	for kind, m := range f.exported {
		for k, v := range m {
			if merged[kind] == nil {
				merged[kind] = map[string]string{}
			}
			merged[kind][k] = v
		}
	}
	return json.Marshal(merged) // encoding/json sorts map keys: deterministic
}

// Merge folds a serialized fact set into the imported facts. Empty
// input is a valid empty fact file (pre-fact vetx files were empty).
func (f *FactSet) Merge(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var decoded map[string]map[string]string
	if err := json.Unmarshal(data, &decoded); err != nil {
		return fmt.Errorf("decoding fact file: %w", err)
	}
	for kind, m := range decoded {
		for k, v := range m {
			if f.imported[kind] == nil {
				f.imported[kind] = map[string]string{}
			}
			f.imported[kind][k] = v
		}
	}
	return nil
}

// MergeFile folds one dependency's vetx fact file into the imported
// facts. Missing files are treated as empty: the go command omits or
// truncates fact files for packages whose vet run exported nothing.
func (f *FactSet) MergeFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	if err := f.Merge(data); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// LookupFunc resolves a function to its fact by canonical object key.
// Convenience shared by the interprocedural analyzers.
func (f *FactSet) LookupFunc(kind string, fn *types.Func) (string, bool) {
	return f.Lookup(kind, ObjectKey(fn))
}

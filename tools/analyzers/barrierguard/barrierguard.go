// Package barrierguard turns the cycle-quantum kernel's bound-weave
// protocol (internal/machine + mem.SharedLLC, ARCHITECTURE.md §10)
// from a code-review convention into a machine-checked structural
// property. The protocol: during a quantum, core goroutines may only
// READ the committed shared-LLC tag state (plus the contention figures
// frozen at the last barrier); tag state MUTATES only between quanta,
// on the kernel goroutine, at the barrier's Commit. The race detector
// proves the absence of unsynchronized access at runtime; barrierguard
// proves at vet time that no code reachable from a core goroutine can
// even name a mutating method.
//
// # Annotations
//
// Shared-state methods are classified where they are defined:
//
//	//shsim:llc-read    safe during a quantum (probes committed state,
//	                    touches only the view's core-private log)
//	//shsim:llc-mutate  commits or reshapes shared state; only legal
//	                    from the barrier (or setup, before goroutines
//	                    exist)
//
// Once one method of a type is classified, every method of that type
// must be (rule "unclassified") — an unclassified method on a shared
// type is exactly where the next mutation sneaks in.
//
// Phase roots are annotated where the goroutines are structured:
//
//	//shsim:quantum-phase  run on a core goroutine during quanta; the
//	                       transitive call graph below it must not
//	                       reach an llc-mutate method (rule
//	                       "quantum-mutate")
//	//shsim:commit-phase   the barrier's commit step; licensed to call
//	                       mutating methods, and stops propagation
//
// Reachability crosses packages through framework facts: the package
// that defines a helper exports "this helper reaches SharedLLC.Commit",
// and the package that runs it under a quantum root turns the fact
// into a diagnostic with the full call chain.
package barrierguard

import (
	"go/types"
	"strings"

	"repro/tools/analyzers/framework"
	"repro/tools/analyzers/internal/flow"
)

// Fact kinds exported by barrierguard.
const (
	// FactClass maps an annotated method to "read", "mutate", or
	// "unclassified" (a method of a classified type missing its own
	// annotation — treated as mutating, because the safe reading is
	// the one that fails closed).
	FactClass = "barrierguard.llc"
	// FactReaches maps a function to the encoded flow.Taint carrying
	// the mutate-reaching call chain.
	FactReaches = "barrierguard.reaches"
)

// Directives recognized by barrierguard.
const (
	DirRead    = "llc-read"
	DirMutate  = "llc-mutate"
	DirQuantum = "quantum-phase"
	DirCommit  = "commit-phase"
)

var Analyzer = &framework.Analyzer{
	Name: "barrierguard",
	Doc: "prove the cycle-quantum LLC protocol: quantum-phase code reaches no mutating shared-LLC method\n\n" +
		"Methods annotated //shsim:llc-read / //shsim:llc-mutate classify the shared surface; functions " +
		"annotated //shsim:quantum-phase (core-goroutine roots) must not transitively reach a mutating " +
		"method, which only //shsim:commit-phase code (the barrier) may call.",
	Run: run,
}

func run(pass *framework.Pass) error {
	g := flow.BuildGraph(pass)

	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, d := range flow.Misplaced(file, DirRead, DirMutate, DirQuantum, DirCommit) {
			pass.ReportRule(d.Pos, "misplaced",
				"//shsim:%s must be the doc comment of a function or method declaration", d.Name)
		}
	}

	// Classify this package's annotated methods and enforce closure:
	// every method of a type with one classified method is classified.
	class := map[*types.Func]string{} // local method -> read|mutate|unclassified
	classifiedTypes := map[*types.TypeName]bool{}
	for _, fn := range g.Funcs {
		fd := g.Decl[fn]
		_, isRead := flow.FuncDirective(fd, DirRead)
		_, isMutate := flow.FuncDirective(fd, DirMutate)
		switch {
		case isRead && isMutate:
			pass.ReportRule(fd.Name.Pos(), "conflict",
				"%s annotated both //shsim:llc-read and //shsim:llc-mutate", flow.FuncName(fn))
		case isRead:
			class[fn] = "read"
		case isMutate:
			class[fn] = "mutate"
		default:
			continue
		}
		if tn := receiverTypeName(fn); tn != nil {
			classifiedTypes[tn] = true
		} else {
			pass.ReportRule(fd.Name.Pos(), "misplaced",
				"//shsim:llc-read / //shsim:llc-mutate classify methods; %s has no receiver", flow.FuncName(fn))
		}
	}
	for _, fn := range g.Funcs {
		if _, done := class[fn]; done {
			continue
		}
		if tn := receiverTypeName(fn); tn != nil && classifiedTypes[tn] {
			class[fn] = "unclassified"
			pass.ReportRule(g.Decl[fn].Name.Pos(), "unclassified",
				"method %s of shared type %s has no //shsim:llc-read or //shsim:llc-mutate annotation "+
					"(every method of a classified type must be classified; unclassified is treated as mutating)",
				flow.FuncName(fn), tn.Name())
		}
	}
	for fn, c := range class {
		pass.Facts.Export(FactClass, framework.ObjectKey(fn), c)
	}

	// classOf resolves a callee's classification, local or imported.
	classOf := func(callee *types.Func) (string, bool) {
		if c, ok := class[callee]; ok {
			return c, true
		}
		c, ok := pass.Facts.LookupFunc(FactClass, callee)
		return c, ok
	}

	// Phase roots and licensed commit code.
	commit := map[*types.Func]bool{}
	quantum := map[*types.Func]bool{}
	for _, fn := range g.Funcs {
		fd := g.Decl[fn]
		_, isCommit := flow.FuncDirective(fd, DirCommit)
		_, isQuantum := flow.FuncDirective(fd, DirQuantum)
		if isCommit && isQuantum {
			pass.ReportRule(fd.Name.Pos(), "conflict",
				"%s annotated both //shsim:quantum-phase and //shsim:commit-phase", flow.FuncName(fn))
			continue
		}
		commit[fn] = isCommit
		quantum[fn] = isQuantum
	}

	// Local sources: call sites whose callee mutates (or is an
	// unclassified method of a shared type — fail closed).
	local := map[*types.Func][]flow.Taint{}
	for _, fn := range g.Funcs {
		for _, call := range g.Calls[fn] {
			c, ok := classOf(call.Callee)
			if !ok || c == "read" {
				continue
			}
			detail := "mutating shared-LLC method " + flow.FuncName(call.Callee)
			if c == "unclassified" {
				detail = "unclassified shared-LLC method " + flow.FuncName(call.Callee) + " (treated as mutating)"
			}
			local[fn] = append(local[fn], flow.Taint{
				Rule:   "quantum-mutate",
				Chain:  flow.FuncName(fn) + " → " + flow.FuncName(call.Callee),
				Detail: detail,
			})
		}
	}

	reaches := flow.Propagate(g, local,
		func(callee *types.Func) (flow.Taint, bool) {
			if v, ok := pass.Facts.LookupFunc(FactReaches, callee); ok {
				if t, ok := flow.DecodeTaint(v); ok {
					return t, true
				}
			}
			return flow.Taint{}, false
		},
		func(fn *types.Func) bool {
			// Commit-phase code is licensed to mutate; mutating methods
			// themselves are the annotated surface, not a violation.
			return commit[fn] || class[fn] == "mutate"
		})

	for _, fn := range g.Funcs {
		t, tainted := reaches[fn]
		if tainted {
			pass.Facts.Export(FactReaches, framework.ObjectKey(fn), t.Encode())
		}
		if quantum[fn] && tainted {
			pass.ReportRule(g.Decl[fn].Name.Pos(), t.Rule,
				"quantum-phase root %s reaches %s during a quantum (via %s); "+
					"shared tag state may change only at the barrier (//shsim:commit-phase)",
				flow.FuncName(fn), t.Detail, t.Chain)
		}
	}
	return nil
}

// receiverTypeName returns the defining TypeName of a method's receiver
// type, or nil for package-level functions.
func receiverTypeName(fn *types.Func) *types.TypeName {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

package barrierguard

import (
	"strings"
	"testing"

	"repro/tools/analyzers/internal/analyzertest"
)

// llcSrc is a reduction of mem.SharedLLC / mem.LLCView: a classified
// shared type with read and mutate methods.
const llcSrc = `package mem

type SharedLLC struct {
	tags []uint64
	log  []uint64
}

//shsim:llc-read
func (s *SharedLLC) Contains(ln uint64) bool { return len(s.tags) > 0 }

//shsim:llc-read
func (s *SharedLLC) Demand(ln uint64) uint64 {
	s.log = append(s.log, ln)
	return 10
}

//shsim:llc-mutate
func (s *SharedLLC) Commit() {
	s.tags = append(s.tags, s.log...)
	s.log = s.log[:0]
}
`

// TestMidQuantumMutationCaught is the seeded protocol violation: a
// quantum-phase root that reaches Commit through a helper, across a
// package boundary, must be reported with the chain.
func TestMidQuantumMutationCaught(t *testing.T) {
	p := analyzertest.NewProject(nil)
	if diags := p.Check(t, "repro/internal/mem", map[string]string{"llc.go": llcSrc}, Analyzer); len(diags) != 0 {
		t.Fatalf("classified type is clean, got %v", analyzertest.Messages(diags))
	}

	diags := p.Check(t, "repro/internal/machine", map[string]string{
		"kernel.go": `package machine

import "repro/internal/mem"

type core struct{ llc *mem.SharedLLC }

// flush sneaks a commit into the quantum path.
func (c *core) flush() { c.llc.Commit() }

//shsim:quantum-phase
func (c *core) loop() {
	_ = c.llc.Demand(1)
	c.flush()
}

//shsim:commit-phase
func (c *core) barrier() { c.llc.Commit() }
`}, Analyzer)
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic, got %v", analyzertest.Messages(diags))
	}
	d := diags[0]
	if d.Rule != "quantum-mutate" {
		t.Errorf("want rule quantum-mutate, got %q", d.Rule)
	}
	for _, want := range []string{"(*core).loop", "(*core).flush", "Commit", "barrier"} {
		if want == "barrier" {
			if strings.Contains(d.Message, "(*core).barrier") {
				t.Errorf("commit-phase code must not be reported: %s", d.Message)
			}
			continue
		}
		if !strings.Contains(d.Message, want) {
			t.Errorf("diagnostic missing %q: %s", want, d.Message)
		}
	}
}

// TestReadOnlyQuantumPathClean: the sanctioned shape — quantum code
// probing committed state through read-annotated methods — reports
// nothing.
func TestReadOnlyQuantumPathClean(t *testing.T) {
	p := analyzertest.NewProject(nil)
	p.Check(t, "repro/internal/mem", map[string]string{"llc.go": llcSrc}, Analyzer)
	diags := p.Check(t, "repro/internal/machine", map[string]string{
		"kernel.go": `package machine

import "repro/internal/mem"

type core struct{ llc *mem.SharedLLC }

//shsim:quantum-phase
func (c *core) loop() {
	if c.llc.Contains(1) {
		_ = c.llc.Demand(1)
	}
}

//shsim:commit-phase
func (c *core) barrier() { c.llc.Commit() }
`}, Analyzer)
	if len(diags) != 0 {
		t.Fatalf("read-only quantum path should be clean, got %v", analyzertest.Messages(diags))
	}
}

// TestUnclassifiedMethodClosure: once a type has one classified method,
// an unannotated method is reported where it is declared AND treated as
// mutating at its call sites.
func TestUnclassifiedMethodClosure(t *testing.T) {
	p := analyzertest.NewProject(nil)
	diags := p.Check(t, "repro/internal/mem", map[string]string{
		"llc.go": llcSrc + `
// Evict is the defect: a new method on the shared type with no
// classification.
func (s *SharedLLC) Evict(ln uint64) { s.tags = s.tags[:0] }
`}, Analyzer)
	if len(diags) != 1 || diags[0].Rule != "unclassified" {
		t.Fatalf("want one unclassified diagnostic, got %v", analyzertest.Messages(diags))
	}

	diags = p.Check(t, "repro/internal/machine", map[string]string{
		"kernel.go": `package machine

import "repro/internal/mem"

//shsim:quantum-phase
func loop(s *mem.SharedLLC) { s.Evict(1) }
`}, Analyzer)
	if len(diags) != 1 || diags[0].Rule != "quantum-mutate" {
		t.Fatalf("want quantum-mutate for unclassified callee, got %v", analyzertest.Messages(diags))
	}
	if !strings.Contains(diags[0].Message, "unclassified") {
		t.Errorf("diagnostic should say the callee is unclassified: %s", diags[0].Message)
	}
}

func TestConflictingAnnotations(t *testing.T) {
	diags := analyzertest.Check(t, "repro/internal/mem", map[string]string{
		"llc.go": `package mem

type S struct{}

//shsim:llc-read
//shsim:llc-mutate
func (s *S) M() {}

//shsim:quantum-phase
//shsim:commit-phase
func both() {}
`}, nil, Analyzer)
	// A conflicted method also fails classification, so it additionally
	// draws the unclassified finding; what matters is one conflict per
	// conflicted declaration.
	var conflicts int
	for _, d := range diags {
		switch d.Rule {
		case "conflict":
			conflicts++
		case "unclassified":
		default:
			t.Errorf("unexpected rule %q (%s)", d.Rule, d.Message)
		}
	}
	if conflicts != 2 {
		t.Fatalf("want 2 conflict diagnostics, got %v", analyzertest.Messages(diags))
	}
}

func TestMisplacedAnnotations(t *testing.T) {
	diags := analyzertest.Check(t, "repro/internal/mem", map[string]string{
		"llc.go": `package mem

//shsim:llc-read
var state int

//shsim:llc-mutate
func free() {}
`}, nil, Analyzer)
	// Detached directive on a var, and a read/mutate classification on a
	// receiverless function: both are hygiene findings.
	if len(diags) != 2 {
		t.Fatalf("want 2 misplaced diagnostics, got %v", analyzertest.Messages(diags))
	}
	for _, d := range diags {
		if d.Rule != "misplaced" {
			t.Errorf("want rule misplaced, got %q (%s)", d.Rule, d.Message)
		}
	}
}

// TestMutateBelowCommitPhaseClean: the barrier's own helpers may
// mutate; commit-phase stops propagation so kernel-side code above the
// barrier is not tainted either.
func TestMutateBelowCommitPhaseClean(t *testing.T) {
	p := analyzertest.NewProject(nil)
	p.Check(t, "repro/internal/mem", map[string]string{"llc.go": llcSrc}, Analyzer)
	diags := p.Check(t, "repro/internal/machine", map[string]string{
		"kernel.go": `package machine

import "repro/internal/mem"

type machine struct{ llc *mem.SharedLLC }

//shsim:commit-phase
func (m *machine) step() { m.llc.Commit() }

// run is kernel-side orchestration above the barrier: calling the
// commit-phase step is legal and propagates nothing.
func (m *machine) run() { m.step() }
`}, Analyzer)
	if len(diags) != 0 {
		t.Fatalf("commit-phase must stop propagation, got %v", analyzertest.Messages(diags))
	}
}
